"""Worklist-based interprocedural taint dataflow for dmwlint.

The intra-function DMW004 pass sees a secret reach a sink only when both
ends sit in the same function.  This module generalizes it: every
function gets a :class:`TaintSummary` describing how taint moves through
it — which parameters flow into a sink somewhere below it, which
parameters flow to its return value, and whether it returns
secret-by-nature data — and a worklist iterates the summaries to a
fixpoint over the :class:`~repro.analysis.static.callgraph.CallGraph`
(cycles converge because summaries only ever grow).

The taint lattice is a set of *origin tokens* per name: ``param:<i>``
(the value derives from parameter ``i``) and ``secret`` (the value
derives from a secret-named source).  Taint propagates through
assignments, calls (arguments into summaries, summaries into return
values), and attribute stores (object-insensitive: ``self.x = bid``
taints every later ``.x`` read in the same function); the *only*
sanctioner is :func:`repro.crypto.secret.declassify`, mirroring the
runtime sanitizer.

The secret-name and sink vocabularies live here (not in the DMW004 rule
module) so both the per-file rule and the whole-program pass share one
definition; ``dmw004_secret_taint`` re-exports them.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionInfo, Project

# ---------------------------------------------------------------------------
# Secret names and sinks (shared vocabulary)
# ---------------------------------------------------------------------------

#: Underscore-separated segments that mark a name as secret.
SECRET_SEGMENTS = {"bid", "bids", "valuation", "valuations"}
#: Substrings that mark a name as secret wherever they appear.
SECRET_SUBSTRINGS = ("secret", "true_value", "private_value")
#: Names that *look* secret but denote public protocol data.
PUBLIC_EXCEPTIONS = {
    "bid_set", "bid_sets", "bid_range", "num_bids", "max_bid", "bids_allowed",
}

LOGGER_BASES = ("log", "logger", "logging")
LOGGER_METHODS = {"debug", "info", "warning", "error", "critical",
                  "exception", "log"}
TRANSCRIPT_METHODS = {"append", "record", "write", "publish"}

#: Origin token for secret-by-name sources.
SECRET = "secret"


def is_secret_name(name: str) -> bool:
    lowered = name.lower()
    if lowered in PUBLIC_EXCEPTIONS:
        return False
    if any(sub in lowered for sub in SECRET_SUBSTRINGS):
        return True
    return any(segment in SECRET_SEGMENTS
               for segment in lowered.split("_"))


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def is_declassify_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    return _terminal_name(node.func) == "declassify"


def sink_description(call: ast.Call) -> str:
    """Non-empty description when ``call`` is a sink, else empty string."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "print":
            return "print()"
        return ""
    if isinstance(func, ast.Attribute):
        base = _terminal_name(func.value)
        dotted = _dotted_name(func) or func.attr
        if dotted in ("json.dump", "json.dumps"):
            return "JSON serialization"
        if (func.attr in LOGGER_METHODS and base is not None
                and any(token in base.lower() for token in LOGGER_BASES)):
            return "logger call `%s`" % dotted
        if (func.attr in TRANSCRIPT_METHODS and base is not None
                and "transcript" in base.lower()):
            return "transcript sink `%s`" % dotted
    return ""


def declassified_ids(root: ast.AST) -> Set[int]:
    """ids of all nodes laundered by an enclosing ``declassify(...)``."""
    laundered: Set[int] = set()
    for node in ast.walk(root):
        if is_declassify_call(node):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for child in ast.walk(arg):
                    laundered.add(id(child))
    return laundered


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SinkFlow:
    """A path from a function parameter to a sink below the function."""

    sink: str                      #: human description of the sink
    chain: Tuple[str, ...] = ()    #: callee qualnames crossed on the way


@dataclass
class TaintSummary:
    """How taint moves through one function."""

    params_to_sink: Dict[int, SinkFlow] = field(default_factory=dict)
    params_to_return: Set[int] = field(default_factory=set)
    returns_secret: bool = False

    def merge(self, other: "TaintSummary") -> bool:
        """Absorb ``other``; True when anything changed (monotone)."""
        changed = False
        for index, flow in other.params_to_sink.items():
            if index not in self.params_to_sink:
                self.params_to_sink[index] = flow
                changed = True
        extra = other.params_to_return - self.params_to_return
        if extra:
            self.params_to_return |= extra
            changed = True
        if other.returns_secret and not self.returns_secret:
            self.returns_secret = True
            changed = True
        return changed


@dataclass(frozen=True)
class Leak:
    """A secret-origin value crossing at least one call into a sink."""

    function: FunctionInfo
    node: ast.Call
    name: str
    sink: str
    chain: Tuple[str, ...]


# ---------------------------------------------------------------------------
# Per-function analysis
# ---------------------------------------------------------------------------

def _map_call_args(call: ast.Call, callee: FunctionInfo,
                   bound: bool) -> List[Tuple[ast.expr, int]]:
    """Pair argument expressions with callee parameter indices."""
    offset = 1 if (callee.is_method and bound) else 0
    pairs: List[Tuple[ast.expr, int]] = []
    names = callee.param_names
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        pairs.append((arg, position + offset))
    for keyword in call.keywords:
        if keyword.arg is None:
            continue
        if keyword.arg in names:
            pairs.append((keyword.value, names.index(keyword.arg)))
    return pairs


def _call_is_bound(call: ast.Call, callee: FunctionInfo,
                   project: Project, caller: FunctionInfo) -> bool:
    """Whether the receiver occupies the ``self`` slot at this site."""
    func = call.func
    if isinstance(func, ast.Name):
        # ``ClassName(...)`` resolving to ``__init__``: the instance fills
        # ``self``, so positional args start at parameter 1.
        return callee.name == "__init__"
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        module = project.modules.get(caller.module)
        if module is not None and func.value.id in module.classes:
            return False          # explicit ``ClassName.method(obj, ...)``
    return True


class _FunctionTaint:
    """One pass over a function body with the current summary table."""

    def __init__(self, function: FunctionInfo, project: Project,
                 graph: CallGraph,
                 summaries: Dict[str, TaintSummary]) -> None:
        self.function = function
        self.project = project
        self.graph = graph
        self.summaries = summaries
        self.resolved = {id(edge.node): edge.callee
                         for edge in graph.callees(function.qualname)}
        self.laundered = declassified_ids(function.node)
        self.env: Dict[str, Set[str]] = {}
        self.return_origins: Set[str] = set()
        self.flows: List[Tuple[Set[str], str, Tuple[str, ...],
                               ast.Call, str]] = []
        self._seed_params()

    def _seed_params(self) -> None:
        for index, name in enumerate(self.function.param_names):
            origins = {"param:%d" % index}
            if is_secret_name(name):
                origins.add(SECRET)
            self.env[name] = origins

    # -- expression origins ------------------------------------------------
    def eval_origins(self, node: ast.AST) -> Set[str]:
        if id(node) in self.laundered:
            return set()
        if isinstance(node, ast.Name):
            origins = set(self.env.get(node.id, ()))
            if is_secret_name(node.id):
                origins.add(SECRET)
            return origins
        if isinstance(node, ast.Attribute):
            origins = set(self.env.get("." + node.attr, ()))
            if is_secret_name(node.attr):
                origins.add(SECRET)
            return origins
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Lambda):
            return set()
        origins: Set[str] = set()
        for child in ast.iter_child_nodes(node):
            origins |= self.eval_origins(child)
        return origins

    def _callee_for(self, call: ast.Call) -> Optional[FunctionInfo]:
        qualname = self.resolved.get(id(call))
        if qualname is None:
            return None
        return self.project.functions.get(qualname)

    def _eval_call(self, call: ast.Call) -> Set[str]:
        if is_declassify_call(call):
            return set()
        argument_origins: Set[str] = set()
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            argument_origins |= self.eval_origins(arg)
        callee = self._callee_for(call)
        if callee is None:
            # Unknown call: conservatively pass taint through (``str(bid)``
            # is still the bid), matching the intra-function rule.
            return argument_origins
        summary = self.summaries.get(callee.qualname, TaintSummary())
        origins: Set[str] = set()
        if summary.returns_secret or is_secret_name(callee.name):
            origins.add(SECRET)
        bound = _call_is_bound(call, callee, self.project, self.function)
        for arg, param_index in _map_call_args(call, callee, bound):
            if param_index in summary.params_to_return:
                origins |= self.eval_origins(arg)
        return origins

    # -- statement walk ----------------------------------------------------
    def _assign(self, target: ast.AST, origins: Set[str],
                augment: bool = False) -> None:
        if isinstance(target, ast.Name):
            if augment:
                self.env[target.id] = self.env.get(target.id,
                                                   set()) | origins
            else:
                self.env[target.id] = set(origins)
        elif isinstance(target, ast.Attribute):
            key = "." + target.attr
            self.env[key] = self.env.get(key, set()) | origins
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, origins, augment=augment)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, origins, augment=augment)
        elif isinstance(target, ast.Subscript):
            self._assign(target.value, origins, augment=True)

    def propagate(self) -> None:
        statements = sorted(
            (node for node in ast.walk(self.function.node)
             if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                  ast.Return, ast.For, ast.withitem))),
            key=lambda node: getattr(node, "lineno", 0))
        # Two passes so loop-carried taint converges (the lattice is tiny:
        # one extra pass reaches anything a back edge can add).
        for _ in range(2):
            for statement in statements:
                if isinstance(statement, ast.Return):
                    if statement.value is not None:
                        self.return_origins |= self.eval_origins(
                            statement.value)
                    continue
                if isinstance(statement, ast.For):
                    self._assign(statement.target,
                                 self.eval_origins(statement.iter))
                    continue
                if isinstance(statement, ast.withitem):
                    if statement.optional_vars is not None:
                        self._assign(statement.optional_vars,
                                     self.eval_origins(
                                         statement.context_expr))
                    continue
                value = statement.value
                if value is None:
                    continue
                origins = self.eval_origins(value)
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        self._assign(target, origins)
                elif isinstance(statement, ast.AnnAssign):
                    self._assign(statement.target, origins)
                else:
                    self._assign(statement.target, origins, augment=True)

    def collect_flows(self) -> None:
        """Record taint reaching sinks or summarized callees."""
        for call in ast.walk(self.function.node):
            if not isinstance(call, ast.Call):
                continue
            if id(call) in self.laundered or is_declassify_call(call):
                continue
            sink = sink_description(call)
            if sink:
                for arg in (list(call.args)
                            + [kw.value for kw in call.keywords]):
                    origins = self.eval_origins(arg)
                    if origins:
                        self.flows.append((origins, sink, (),
                                           call, self._leak_name(arg)))
            callee = self._callee_for(call)
            if callee is None:
                continue
            summary = self.summaries.get(callee.qualname)
            if summary is None or not summary.params_to_sink:
                continue
            bound = _call_is_bound(call, callee, self.project, self.function)
            for arg, param_index in _map_call_args(call, callee, bound):
                flow = summary.params_to_sink.get(param_index)
                if flow is None:
                    continue
                origins = self.eval_origins(arg)
                if origins:
                    chain = (callee.qualname,) + flow.chain
                    self.flows.append((origins, flow.sink, chain,
                                       call, self._leak_name(arg)))

    def _leak_name(self, arg: ast.AST) -> str:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and (
                    is_secret_name(node.id) or self.env.get(node.id)):
                return node.id
            if isinstance(node, ast.Attribute) and is_secret_name(node.attr):
                return node.attr
        try:
            rendered = ast.unparse(arg)  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - defensive
            return "<expression>"
        return rendered if len(rendered) <= 40 else rendered[:37] + "..."

    # -- results -----------------------------------------------------------
    def summary(self) -> TaintSummary:
        result = TaintSummary()
        for origins, sink, chain, _node, _name in self.flows:
            for token in origins:
                if token.startswith("param:"):
                    index = int(token.split(":", 1)[1])
                    if index not in result.params_to_sink:
                        result.params_to_sink[index] = SinkFlow(
                            sink=sink, chain=chain)
        for token in self.return_origins:
            if token.startswith("param:"):
                result.params_to_return.add(int(token.split(":", 1)[1]))
            elif token == SECRET:
                result.returns_secret = True
        if is_secret_name(self.function.name):
            result.returns_secret = True
        return result

    def leaks(self) -> List[Leak]:
        found: List[Leak] = []
        for origins, sink, chain, node, name in self.flows:
            if SECRET in origins and chain:
                found.append(Leak(function=self.function, node=node,
                                  name=name, sink=sink, chain=chain))
        return found


def _analyze(function: FunctionInfo, project: Project, graph: CallGraph,
             summaries: Dict[str, TaintSummary]) -> _FunctionTaint:
    analysis = _FunctionTaint(function, project, graph, summaries)
    analysis.propagate()
    analysis.collect_flows()
    return analysis


# ---------------------------------------------------------------------------
# Whole-program driver
# ---------------------------------------------------------------------------

def compute_summaries(project: Project,
                      graph: CallGraph) -> Dict[str, TaintSummary]:
    """Fixpoint taint summaries for every function in the project."""
    summaries: Dict[str, TaintSummary] = {
        qualname: TaintSummary() for qualname in project.functions}
    work = deque(sorted(summaries))
    queued = set(work)
    while work:
        qualname = work.popleft()
        queued.discard(qualname)
        function = project.functions[qualname]
        new = _analyze(function, project, graph, summaries).summary()
        if summaries[qualname].merge(new):
            for caller in sorted(graph.callers.get(qualname, ())):
                if caller not in queued:
                    work.append(caller)
                    queued.add(caller)
    return summaries


def find_interprocedural_leaks(
        project: Project, graph: CallGraph,
        summaries: Dict[str, TaintSummary],
        functions: Optional[Iterable[FunctionInfo]] = None) -> List[Leak]:
    """Secret-origin values crossing at least one call into a sink.

    Direct (same-function) sink hits are excluded — the intra-function
    DMW004 pass already reports those; this pass adds exactly the leaks
    that need the call graph to see.
    """
    leaks: List[Leak] = []
    pool = list(functions) if functions is not None \
        else list(project.iter_functions())
    for function in pool:
        leaks.extend(
            _analyze(function, project, graph, summaries).leaks())
    return leaks
