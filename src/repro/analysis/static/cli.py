"""Command-line interface for dmwlint.

Usage::

    python -m repro.lint                   # src + benchmarks/examples
    python -m repro.lint src/              # lint one tree, human output
    dmwlint --format json src/             # machine-readable report
    dmwlint --format sarif src/            # SARIF 2.1.0 for code scanning
    dmwlint --baseline dmwlint-baseline.json src/   # ratchet: new only
    dmwlint --write-baseline dmwlint-baseline.json src/
    dmwlint --jobs 4 src/                  # parallel per-file pass
    dmwlint --list-rules                   # rule catalog with invariants
    dmwlint --select DMW001,DMW004 src/    # run a subset
    dmwlint --check-annotations src/       # add DMW000 strict-typing rule

With no explicit paths, ``src`` is linted under the full default rule
set and ``benchmarks``/``examples`` (when present) under the relaxed
set — example code must still be deterministic (DMW001) and exact
(DMW006), but is not held to protocol-internal rules.

Exit status: 0 when clean, 1 when violations or parse errors were found,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .base import Rule
from .baseline import BaselineError, apply_baseline, write_baseline
from .engine import LintReport, UsageError, run_paths
from .rules import ALL_RULES, DEFAULT_RULES, RELAXED_RULES
from .sarif import render_sarif

#: Trees linted with the relaxed rule set when no paths are given.
RELAXED_SCOPE_DIRS = ("benchmarks", "examples")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dmwlint",
        description="DMW-aware static analysis: mechanically enforce the "
                    "paper invariants (determinism, secrecy, field "
                    "arithmetic, message immutability) on the codebase.")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src "
                             "under the full rule set, plus benchmarks/ and "
                             "examples/ under the relaxed set)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to run "
                             "(e.g. DMW001,DMW004)")
    parser.add_argument("--ignore", metavar="RULES", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file of accepted findings; only "
                             "violations not in the baseline fail the run")
    parser.add_argument("--write-baseline", metavar="PATH", default=None,
                        help="write the current findings to PATH as the new "
                             "baseline and exit 0")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the per-file pass "
                             "(default: 1; the whole-program pass always "
                             "runs in the parent)")
    parser.add_argument("--check-annotations", action="store_true",
                        help="also run DMW000 (strict annotation coverage "
                             "on crypto/core/network)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _parse_rule_ids(flag: str, tokens: str) -> List[str]:
    wanted = sorted({token.strip().upper()
                     for token in tokens.split(",") if token.strip()})
    known = {rule.rule_id for rule in ALL_RULES}
    unknown = [rule_id for rule_id in wanted if rule_id not in known]
    if unknown:
        raise UsageError("dmwlint: unknown rule id(s) in %s: %s"
                         % (flag, ", ".join(unknown)))
    return wanted


def _resolve_rules(select: Optional[str], ignore: Optional[str],
                   check_annotations: bool) -> List[Rule]:
    if select:
        wanted = set(_parse_rule_ids("--select", select))
        rules = [rule for rule in ALL_RULES if rule.rule_id in wanted]
    else:
        rules = list(DEFAULT_RULES)
        if check_annotations:
            rules = [r for r in ALL_RULES if r.rule_id == "DMW000"] + rules
    if ignore:
        dropped = set(_parse_rule_ids("--ignore", ignore))
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules


def _render_rule_catalog() -> str:
    lines = ["dmwlint rule catalog", "====================", ""]
    for rule in ALL_RULES:
        status = "default" if rule.default_enabled else "opt-in"
        scope = ("/".join(rule.include_parts)
                 if rule.include_parts else "everywhere")
        lines.append("%s (%s, scope: %s)" % (rule.rule_id, status, scope))
        lines.append("  %s" % rule.description)
        lines.append("  invariant: %s" % rule.invariant)
        if rule.exempt_names:
            lines.append("  exempt files: %s" % ", ".join(rule.exempt_names))
        lines.append("")
    return "\n".join(lines)


def _run_default_scope(rules: List[Rule], jobs: int) -> LintReport:
    """No explicit paths: src under ``rules``, example trees relaxed."""
    report = run_paths(["src"], rules, jobs=jobs)
    selected = {rule.rule_id for rule in rules}
    relaxed = [rule for rule in RELAXED_RULES if rule.rule_id in selected]
    for directory in RELAXED_SCOPE_DIRS:
        if relaxed and os.path.isdir(directory):
            report.merge(run_paths([directory], relaxed, jobs=jobs))
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_render_rule_catalog())
        return 0
    try:
        rules = _resolve_rules(args.select, args.ignore,
                               args.check_annotations)
        if args.jobs < 1:
            raise UsageError("dmwlint: --jobs must be >= 1")
        if args.paths:
            report = run_paths(args.paths, rules, jobs=args.jobs)
        else:
            report = _run_default_scope(rules, args.jobs)
        if args.write_baseline:
            count = write_baseline(report, args.write_baseline)
            print("dmwlint: wrote baseline with %d finding(s) to %s"
                  % (count, args.write_baseline))
            return 0
        if args.baseline:
            apply_baseline(report, args.baseline)
    except (UsageError, BaselineError) as error:
        print(error, file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(render_sarif(report, rules))
    else:
        print(report.render_human())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
