"""Command-line interface for dmwlint.

Usage::

    python -m repro.lint src/              # lint a tree, human output
    dmwlint --format json src/             # machine-readable report
    dmwlint --list-rules                   # rule catalog with invariants
    dmwlint --select DMW001,DMW004 src/    # run a subset
    dmwlint --check-annotations src/       # add DMW000 strict-typing rule

Exit status: 0 when clean, 1 when violations or parse errors were found,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .base import Rule
from .engine import run_paths
from .rules import ALL_RULES, DEFAULT_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dmwlint",
        description="DMW-aware static analysis: mechanically enforce the "
                    "paper invariants (determinism, secrecy, field "
                    "arithmetic, message immutability) on the codebase.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to run "
                             "(e.g. DMW001,DMW004)")
    parser.add_argument("--ignore", metavar="RULES", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--check-annotations", action="store_true",
                        help="also run DMW000 (strict annotation coverage "
                             "on crypto/core/network)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _resolve_rules(select: Optional[str], ignore: Optional[str],
                   check_annotations: bool) -> List[Rule]:
    if select:
        wanted = {token.strip().upper()
                  for token in select.split(",") if token.strip()}
        unknown = wanted - {rule.rule_id for rule in ALL_RULES}
        if unknown:
            raise SystemExit(
                "dmwlint: unknown rule id(s): %s" % ", ".join(sorted(unknown)))
        rules = [rule for rule in ALL_RULES if rule.rule_id in wanted]
    else:
        rules = list(DEFAULT_RULES)
        if check_annotations:
            rules = [r for r in ALL_RULES if r.rule_id == "DMW000"] + rules
    if ignore:
        dropped = {token.strip().upper()
                   for token in ignore.split(",") if token.strip()}
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules


def _render_rule_catalog() -> str:
    lines = ["dmwlint rule catalog", "====================", ""]
    for rule in ALL_RULES:
        status = "default" if rule.default_enabled else "opt-in"
        scope = ("/".join(rule.include_parts)
                 if rule.include_parts else "everywhere")
        lines.append("%s (%s, scope: %s)" % (rule.rule_id, status, scope))
        lines.append("  %s" % rule.description)
        lines.append("  invariant: %s" % rule.invariant)
        if rule.exempt_names:
            lines.append("  exempt files: %s" % ", ".join(rule.exempt_names))
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_render_rule_catalog())
        return 0
    try:
        rules = _resolve_rules(args.select, args.ignore,
                               args.check_annotations)
    except SystemExit as error:
        print(error, file=sys.stderr)
        return 2
    report = run_paths(args.paths, rules)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_human())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
