"""dmwlint — DMW-aware static analysis.

The DMW mechanism's guarantees rest on invariants the Python type system
cannot see: losing bids must stay secret below the collusion threshold
``c``, transcripts must be bit-identical across reruns, and all field
arithmetic must stay in ``Z_p``/``Z_q``.  This package implements an
AST-based lint engine with domain rules (``DMW001``–``DMW011``) that
mechanically enforce those invariants on every PR.

Two kinds of rules run over one shared parse per file: per-file rules
(:class:`Rule`) see a single :class:`FileContext`; whole-program rules
(:class:`ProjectRule`) see a :class:`ProjectContext` carrying a module
resolver, call graph, and interprocedural taint summaries — which is
how DMW004 follows a secret through a cross-module helper chain and how
DMW009–DMW011 check protocol flow, async safety, and pool-shared state.

Entry points
------------
* ``python -m repro.lint src/`` — module runner.
* ``dmwlint src/`` — console script (see ``pyproject.toml``).
* :func:`run_paths` — programmatic API.

Rules can be suppressed per line with ``# dmwlint: disable=DMW001`` (or
``disable=all``) and per file with a ``# dmwlint: disable-file=DMW001``
comment anywhere in the file.  ``--baseline`` subtracts a committed set
of accepted findings (the ratchet); ``--format sarif`` exports SARIF
2.1.0 for code-scanning backends.  See ``docs/STATIC_ANALYSIS.md`` for
the rule catalog and the paper invariant each rule protects.
"""

from __future__ import annotations

from .base import FileContext, ProjectRule, Rule, Violation
from .baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from .engine import (
    LintReport,
    UsageError,
    discover_files,
    lint_file,
    lint_source,
    run_paths,
)
from .project import ProjectContext
from .rules import ALL_RULES, DEFAULT_RULES, RELAXED_RULES, rule_by_id
from .sarif import render_sarif, to_sarif
from .suppressions import Suppressions, parse_suppressions

__all__ = [
    "ALL_RULES",
    "BaselineError",
    "DEFAULT_RULES",
    "FileContext",
    "LintReport",
    "ProjectContext",
    "ProjectRule",
    "RELAXED_RULES",
    "Rule",
    "Suppressions",
    "UsageError",
    "Violation",
    "apply_baseline",
    "discover_files",
    "lint_file",
    "lint_source",
    "load_baseline",
    "parse_suppressions",
    "render_baseline",
    "render_sarif",
    "rule_by_id",
    "run_paths",
    "to_sarif",
    "write_baseline",
]
