"""dmwlint — DMW-aware static analysis.

The DMW mechanism's guarantees rest on invariants the Python type system
cannot see: losing bids must stay secret below the collusion threshold
``c``, transcripts must be bit-identical across reruns, and all field
arithmetic must stay in ``Z_p``/``Z_q``.  This package implements an
AST-based lint engine with domain rules (``DMW001``–``DMW006``) that
mechanically enforce those invariants on every PR.

Entry points
------------
* ``python -m repro.lint src/`` — module runner.
* ``dmwlint src/`` — console script (see ``pyproject.toml``).
* :func:`run_paths` — programmatic API.

Rules can be suppressed per line with ``# dmwlint: disable=DMW001`` (or
``disable=all``) and per file with a ``# dmwlint: disable-file=DMW001``
comment anywhere in the file.  See ``docs/STATIC_ANALYSIS.md`` for the
rule catalog and the paper invariant each rule protects.
"""

from __future__ import annotations

from .base import FileContext, Rule, Violation
from .engine import LintReport, lint_file, lint_source, run_paths
from .rules import ALL_RULES, DEFAULT_RULES, rule_by_id
from .suppressions import Suppressions, parse_suppressions

__all__ = [
    "ALL_RULES",
    "DEFAULT_RULES",
    "FileContext",
    "LintReport",
    "Rule",
    "Suppressions",
    "Violation",
    "lint_file",
    "lint_source",
    "parse_suppressions",
    "rule_by_id",
    "run_paths",
]
