"""Suppression comments for dmwlint.

Two forms are recognized, mirroring pylint's comment idiom:

* **Line suppression** — a trailing comment on the violating line::

      x = random.random()  # dmwlint: disable=DMW001
      y = a * b            # dmwlint: disable=DMW003,DMW006
      z = leak(bid)        # dmwlint: disable=all

  The suppression applies to that physical line only.

* **File suppression** — a standalone comment anywhere in the file::

      # dmwlint: disable-file=DMW002

  The listed rules are disabled for the whole file.

Rule lists are comma-separated; ``all`` disables every rule.  Matching is
case-insensitive on the ``dmwlint`` keyword but rule ids must be given in
canonical upper-case form (``DMW001``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from .base import Violation

_LINE_RE = re.compile(
    r"#\s*dmwlint:\s*disable\s*=\s*([A-Za-z0-9_,\s]+)", re.IGNORECASE)
_FILE_RE = re.compile(
    r"#\s*dmwlint:\s*disable-file\s*=\s*([A-Za-z0-9_,\s]+)", re.IGNORECASE)

#: Sentinel rule id meaning "every rule".
ALL = "all"


def _parse_rule_list(raw: str) -> FrozenSet[str]:
    rules: Set[str] = set()
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        if token.lower() == ALL:
            rules.add(ALL)
        else:
            rules.add(token.upper())
    return frozenset(rules)


@dataclass
class Suppressions:
    """Parsed suppression directives for one file."""

    #: line number (1-based) -> rule ids disabled on that line.
    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: rule ids disabled for the entire file.
    file_wide: FrozenSet[str] = frozenset()

    def is_suppressed(self, violation: Violation) -> bool:
        if ALL in self.file_wide or violation.rule_id in self.file_wide:
            return True
        line_rules = self.by_line.get(violation.line)
        if line_rules is None:
            return False
        return ALL in line_rules or violation.rule_id in line_rules

    def filter(self, violations: List[Violation]) -> List[Violation]:
        return [v for v in violations if not self.is_suppressed(v)]

    @property
    def count(self) -> int:
        return len(self.by_line) + (1 if self.file_wide else 0)


def parse_suppressions(source: str) -> Suppressions:
    """Extract all suppression directives from ``source``."""
    by_line: Dict[int, FrozenSet[str]] = {}
    file_wide: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "dmwlint" not in line:
            continue
        file_match = _FILE_RE.search(line)
        if file_match:
            file_wide.update(_parse_rule_list(file_match.group(1)))
            continue
        line_match = _LINE_RE.search(line)
        if line_match:
            existing = by_line.get(lineno, frozenset())
            by_line[lineno] = existing | _parse_rule_list(line_match.group(1))
    return Suppressions(by_line=by_line, file_wide=frozenset(file_wide))
