"""Experiments E5/E6: faithfulness and strong voluntary participation.

Theorem 5 says no agent can gain by deviating from the suggested strategy
(ex post Nash); Theorem 9 says an honest agent never ends up with negative
utility regardless of what the others do.  Both are universally quantified,
so the experiment *measures* them over the concrete deviation families of
:mod:`repro.core.deviant` and over exhaustive bid misreports:

* :func:`evaluate_deviation` — one (instance, deviator, strategy) cell:
  utility of the deviator under the deviation vs under honesty, plus the
  honest bystanders' utilities (which must stay >= 0);
* :func:`run_deviation_matrix` — the full strategy x instance sweep;
* :func:`check_dmw_truthfulness_exhaustive` — every alternative bid vector
  for one agent (the information-revelation half of faithfulness, i.e.
  Theorem 2 lifted to the distributed mechanism).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.agent import DMWAgent
from ..core.deviant import MisreportBidAgent, standard_deviations
from ..core.parameters import DMWParameters
from ..core.protocol import DMWProtocol
from ..scheduling.problem import SchedulingProblem


def _integer_rows(problem: SchedulingProblem) -> List[List[int]]:
    return [[int(problem.time(i, j)) for j in range(problem.num_tasks)]
            for i in range(problem.num_agents)]


def run_with_agents(parameters: DMWParameters,
                    agent_factories: Sequence[Callable],
                    problem: SchedulingProblem,
                    seed: int = 0):
    """Instantiate one agent per factory and execute the protocol.

    Each factory takes ``(index, parameters, true_values, rng)``.
    """
    rows = _integer_rows(problem)
    master = random.Random(seed)
    agents = [
        factory(index, parameters, rows[index],
                random.Random(master.getrandbits(64)))
        for index, factory in enumerate(agent_factories)
    ]
    protocol = DMWProtocol(parameters, agents)
    return protocol.execute(problem.num_tasks)


def honest_factory(index: int, parameters: DMWParameters,
                   true_values: Sequence[int],
                   rng: random.Random) -> DMWAgent:
    """The suggested strategy."""
    return DMWAgent(index, parameters, true_values, rng=rng)


@dataclass(frozen=True)
class DeviationOutcome:
    """One cell of the faithfulness matrix.

    ``gain`` must be <= 0 (up to exact arithmetic: all quantities are
    integers here) for faithfulness to hold; ``min_honest_utility`` must be
    >= 0 for strong voluntary participation.
    """

    strategy: str
    deviant_index: int
    honest_utility: float
    deviant_utility: float
    completed: bool
    abort_phase: Optional[str]
    min_honest_utility: float

    @property
    def gain(self) -> float:
        return self.deviant_utility - self.honest_utility


def evaluate_deviation(problem: SchedulingProblem,
                       parameters: DMWParameters,
                       strategy_name: str,
                       factory: Callable,
                       deviant_index: int,
                       seed: int = 0) -> DeviationOutcome:
    """Measure one deviation against the honest baseline.

    The baseline and the deviating run use the same types and seeds; only
    the deviator's strategy differs (the ex post comparison of
    Definition 9).
    """
    n = problem.num_agents
    honest_outcome = run_with_agents(parameters, [honest_factory] * n,
                                     problem, seed)
    factories = [honest_factory] * n
    factories[deviant_index] = factory
    deviating_outcome = run_with_agents(parameters, factories, problem, seed)
    bystanders = [deviating_outcome.utility(i, problem)
                  for i in range(n) if i != deviant_index]
    return DeviationOutcome(
        strategy=strategy_name,
        deviant_index=deviant_index,
        honest_utility=honest_outcome.utility(deviant_index, problem),
        deviant_utility=deviating_outcome.utility(deviant_index, problem),
        completed=deviating_outcome.completed,
        abort_phase=(deviating_outcome.abort.phase
                     if deviating_outcome.abort else None),
        min_honest_utility=min(bystanders) if bystanders else 0.0,
    )


def run_deviation_matrix(problem: SchedulingProblem,
                         parameters: DMWParameters,
                         deviant_indices: Optional[Sequence[int]] = None,
                         strategies: Optional[Dict[str, Callable]] = None,
                         seed: int = 0) -> List[DeviationOutcome]:
    """The full deviation-strategy sweep for one instance."""
    if strategies is None:
        strategies = standard_deviations()
    if deviant_indices is None:
        deviant_indices = range(problem.num_agents)
    outcomes = []
    for deviant_index in deviant_indices:
        for name, factory in strategies.items():
            outcomes.append(evaluate_deviation(
                problem, parameters, name, factory, deviant_index, seed,
            ))
    return outcomes


def faithfulness_violations(outcomes: Sequence[DeviationOutcome],
                            tolerance: float = 1e-9
                            ) -> List[DeviationOutcome]:
    """Outcomes where deviating strictly beat honesty (must be empty)."""
    return [outcome for outcome in outcomes if outcome.gain > tolerance]


def participation_violations(outcomes: Sequence[DeviationOutcome],
                             tolerance: float = 1e-9
                             ) -> List[DeviationOutcome]:
    """Outcomes where an honest bystander lost utility (must be empty)."""
    return [outcome for outcome in outcomes
            if outcome.min_honest_utility < -tolerance]


def check_dmw_truthfulness_exhaustive(problem: SchedulingProblem,
                                      parameters: DMWParameters,
                                      agent: int,
                                      seed: int = 0
                                      ) -> List[DeviationOutcome]:
    """Try *every* alternative bid vector for ``agent``.

    Returns the outcomes whose gain is positive (must be empty).  The grid
    is ``W^m``, so keep instances small.
    """
    n = problem.num_agents
    honest_outcome = run_with_agents(parameters, [honest_factory] * n,
                                     problem, seed)
    honest_utility = honest_outcome.utility(agent, problem)
    true_row = tuple(int(problem.time(agent, j))
                     for j in range(problem.num_tasks))
    violations = []
    for reported in itertools.product(parameters.bid_values,
                                      repeat=problem.num_tasks):
        if reported == true_row:
            continue

        def factory(index, params, true_values, rng,
                    _reported=reported):
            return MisreportBidAgent(index, params, true_values,
                                     list(_reported), rng=rng)

        factories = [honest_factory] * n
        factories[agent] = factory
        outcome = run_with_agents(parameters, factories, problem, seed)
        utility = outcome.utility(agent, problem)
        if utility > honest_utility + 1e-9:
            violations.append(DeviationOutcome(
                strategy="misreport%s" % (reported,),
                deviant_index=agent,
                honest_utility=honest_utility,
                deviant_utility=utility,
                completed=outcome.completed,
                abort_phase=None,
                min_honest_utility=0.0,
            ))
    return violations
