"""Group deviations: where faithfulness stops.

Faithfulness (Theorem 5) is an *ex post Nash* guarantee — it quantifies
over unilateral deviations only.  Like every Vickrey-payment mechanism,
MinWork (and therefore DMW) is **not** group-strategyproof: a cartel
containing a task's winner and the second-lowest bidder can inflate the
second price, raising the winner's payment at no cost to the accomplice,
and split the surplus through a side payment.

This module *measures* that boundary, which the paper leaves implicit:

* :func:`cartel_experiment` runs DMW twice — honest vs a price-inflation
  cartel — and reports each side's joint utility;
* :func:`best_cartel_gain` searches all (winner, accomplice) pairs for a
  task and returns the largest achievable joint gain.

A positive measured gain here is *expected* (it is inherited from the
Vickrey payment rule, not introduced by the distribution), and it
delimits precisely what "faithful" does and does not promise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.deviant import MisreportBidAgent
from ..core.parameters import DMWParameters
from ..scheduling.problem import SchedulingProblem
from .faithfulness import honest_factory, run_with_agents


@dataclass(frozen=True)
class CartelOutcome:
    """Joint-utility comparison for one cartel.

    ``joint_gain > 0`` demonstrates a profitable *group* deviation (no
    contradiction with Theorem 5, which is unilateral).
    """

    members: Tuple[int, ...]
    honest_joint_utility: float
    cartel_joint_utility: float
    completed: bool

    @property
    def joint_gain(self) -> float:
        return self.cartel_joint_utility - self.honest_joint_utility


def cartel_experiment(problem: SchedulingProblem,
                      parameters: DMWParameters,
                      members: Sequence[int],
                      reported_rows: dict,
                      seed: int = 0) -> CartelOutcome:
    """Run honest vs cartel and compare the members' joint utility.

    Parameters
    ----------
    members:
        The colluding agents.
    reported_rows:
        ``member -> bid row`` the cartel agrees to report (each row must
        contain legal bids from ``W``).
    """
    n = problem.num_agents
    honest = run_with_agents(parameters, [honest_factory] * n, problem,
                             seed)
    factories: List[Callable] = [honest_factory] * n
    for member in members:
        row = reported_rows[member]

        def factory(index, params, true_values, rng, _row=row):
            return MisreportBidAgent(index, params, true_values,
                                     list(_row), rng=rng)

        factories[member] = factory
    deviating = run_with_agents(parameters, factories, problem, seed)
    honest_joint = sum(honest.utility(member, problem)
                       for member in members)
    cartel_joint = sum(deviating.utility(member, problem)
                       for member in members)
    return CartelOutcome(members=tuple(members),
                         honest_joint_utility=honest_joint,
                         cartel_joint_utility=cartel_joint,
                         completed=deviating.completed)


def price_inflation_rows(problem: SchedulingProblem,
                         parameters: DMWParameters,
                         winner: int, accomplice: int) -> dict:
    """The canonical cartel play: the accomplice bids the maximum
    everywhere, pushing every second price it was setting up to ``w_k``;
    the winner keeps bidding truthfully."""
    top = parameters.bid_values[-1]
    return {
        winner: [int(problem.time(winner, j))
                 for j in range(problem.num_tasks)],
        accomplice: [top] * problem.num_tasks,
    }


def best_cartel_gain(problem: SchedulingProblem,
                     parameters: DMWParameters,
                     seed: int = 0) -> Optional[CartelOutcome]:
    """Search all ordered (winner, accomplice) pairs for the best cartel.

    Returns the most profitable :class:`CartelOutcome`, or ``None`` when
    no pair gains (e.g. every second price is already maximal).
    """
    best: Optional[CartelOutcome] = None
    n = problem.num_agents
    for winner in range(n):
        for accomplice in range(n):
            if accomplice == winner:
                continue
            rows = price_inflation_rows(problem, parameters, winner,
                                        accomplice)
            outcome = cartel_experiment(problem, parameters,
                                        (winner, accomplice), rows, seed)
            if best is None or outcome.joint_gain > best.joint_gain:
                best = outcome
    if best is not None and best.joint_gain <= 0:
        return None
    return best
