"""Exact transcript-leakage analysis (the remark after Theorem 10).

DMW's transcript intentionally reveals, per task: the winner, the first
price ``y*``, and the second price ``y**``.  The remark after Theorem 10
calls this disclosure "intrinsic to the scheduling problem" and notes the
residual risk lies in *repeated* executions over the same job set.  This
module quantifies both statements exactly, by Bayesian enumeration:

* :func:`consistent_loser_profiles` enumerates every losing-bid vector in
  ``W^(n-1)`` consistent with a transcript (the observer's exact posterior
  support under a uniform prior);
* :func:`posterior_marginals` gives each loser's marginal bid
  distribution, and :func:`entropy_bits` / :func:`leakage_report` the
  entropy lost relative to the uniform prior;
* :func:`repeated_execution_leakage` re-runs DMW on the same instance
  with fresh protocol randomness and confirms the transcript — hence the
  posterior — is *identical* across repetitions: re-randomizing the
  polynomials leaks nothing new; only changing the *bids* would.

Everything here is exact (enumeration, not sampling), so keep instances
small (``|W|^(n-1)`` profiles are enumerated).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..core.outcome import AuctionTranscript
from ..core.parameters import DMWParameters
from ..core.protocol import run_dmw
from ..scheduling.problem import SchedulingProblem


def consistent_loser_profiles(parameters: DMWParameters,
                              transcript: AuctionTranscript
                              ) -> Iterator[Dict[int, int]]:
    """Yield every loser-bid assignment consistent with ``transcript``.

    A profile ``{loser index -> bid}`` is consistent when:

    * every loser bids at least ``y**`` (the second price is the minimum
      over non-winners);
    * some loser bids exactly ``y**``;
    * every loser with a smaller pseudonym than the winner bids strictly
      more than ``y*`` (otherwise the tie-break would have made *it* the
      winner).
    """
    n = parameters.num_agents
    losers = [i for i in range(n) if i != transcript.winner]
    winner_pseudonym = parameters.pseudonyms[transcript.winner]
    candidate_bids: List[List[int]] = []
    for loser in losers:
        options = [w for w in parameters.bid_values
                   if w >= transcript.second_price]
        if parameters.pseudonyms[loser] < winner_pseudonym:
            options = [w for w in options if w > transcript.first_price]
        candidate_bids.append(options)
    for combo in itertools.product(*candidate_bids):
        if min(combo) == transcript.second_price:
            yield dict(zip(losers, combo))


def posterior_marginals(parameters: DMWParameters,
                        transcript: AuctionTranscript
                        ) -> Dict[int, Dict[int, float]]:
    """Each loser's marginal bid distribution given the transcript.

    Under a uniform prior over all ``W^(n-1)`` loser profiles, the
    posterior is uniform over the consistent set; marginals are exact
    relative frequencies within it.
    """
    counts: Dict[int, Dict[int, int]] = {}
    total = 0
    for profile in consistent_loser_profiles(parameters, transcript):
        total += 1
        for loser, bid in profile.items():
            counts.setdefault(loser, {}).setdefault(bid, 0)
            counts[loser][bid] += 1
    if total == 0:
        raise ValueError("transcript is inconsistent: empty posterior")
    return {
        loser: {bid: count / total for bid, count in bids.items()}
        for loser, bids in counts.items()
    }


def entropy_bits(distribution: Dict[int, float]) -> float:
    """Shannon entropy of a finite distribution, in bits."""
    return -sum(p * math.log2(p) for p in distribution.values() if p > 0)


@dataclass(frozen=True)
class LeakageReport:
    """Per-loser leakage for one auction transcript.

    Attributes
    ----------
    prior_bits:
        Entropy of the uniform prior over ``W`` (same for every agent).
    posterior_bits:
        ``loser index -> `` posterior entropy of its bid.
    leaked_bits:
        ``loser index -> prior - posterior`` (information the transcript
        revealed about that loser).
    """

    prior_bits: float
    posterior_bits: Dict[int, float]
    leaked_bits: Dict[int, float]

    @property
    def max_leak(self) -> float:
        return max(self.leaked_bits.values()) if self.leaked_bits else 0.0

    @property
    def total_leak(self) -> float:
        return sum(self.leaked_bits.values())


def leakage_report(parameters: DMWParameters,
                   transcript: AuctionTranscript) -> LeakageReport:
    """Quantify what one transcript reveals about each loser's bid."""
    prior = math.log2(len(parameters.bid_values))
    marginals = posterior_marginals(parameters, transcript)
    posterior = {loser: entropy_bits(dist)
                 for loser, dist in marginals.items()}
    leaked = {loser: prior - bits for loser, bits in posterior.items()}
    return LeakageReport(prior_bits=prior, posterior_bits=posterior,
                         leaked_bits=leaked)


def repeated_execution_leakage(problem: SchedulingProblem,
                               parameters: DMWParameters,
                               repetitions: int = 5,
                               seed: int = 0) -> List[LeakageReport]:
    """Run DMW ``repetitions`` times on the same instance; report leakage.

    Each run uses fresh protocol randomness (new polynomials, new
    blindings).  Because the *bids* are unchanged, every run produces the
    identical transcript, so the observer's posterior after ``k`` runs
    equals the posterior after one — re-randomization leaks nothing new.
    The returned reports are therefore all equal, which the caller (and
    ``tests/test_leakage.py``) can assert.
    """
    master = random.Random(seed)
    reports: List[LeakageReport] = []
    reference_transcripts = None
    for _ in range(repetitions):
        outcome = run_dmw(problem, parameters=parameters,
                          rng=random.Random(master.getrandbits(64)))
        if not outcome.completed:
            raise RuntimeError("honest repeated run aborted: %r"
                               % outcome.abort)
        transcripts = [(t.task, t.first_price, t.winner, t.second_price)
                       for t in outcome.transcripts]
        if reference_transcripts is None:
            reference_transcripts = transcripts
        elif transcripts != reference_transcripts:
            raise AssertionError(
                "repeated executions produced different transcripts"
            )
        reports.append(leakage_report(parameters, outcome.transcripts[0]))
    return reports
