"""Experiment drivers: complexity (Table 1), faithfulness, privacy,
approximation, and table rendering."""

from .approximation import (
    RatioSample,
    adversarial_ratios,
    measure_ratio,
    random_workload_ratios,
)
from .complexity import (
    CostSample,
    ScalingFit,
    fit_loglog_slope,
    measure_dmw,
    measure_minwork,
    run_centralized_minwork_over_network,
    sweep_agents,
    sweep_group_size,
    sweep_tasks,
    table1_fits,
)
from .faithfulness import (
    DeviationOutcome,
    check_dmw_truthfulness_exhaustive,
    evaluate_deviation,
    faithfulness_violations,
    honest_factory,
    participation_violations,
    run_deviation_matrix,
    run_with_agents,
)
from .cartel import (
    CartelOutcome,
    best_cartel_gain,
    cartel_experiment,
    price_inflation_rows,
)
from .frugality import (
    FrugalityReport,
    frugality_by_competition,
    frugality_of,
)
from .leakage import (
    LeakageReport,
    consistent_loser_profiles,
    entropy_bits,
    leakage_report,
    posterior_marginals,
    repeated_execution_leakage,
)
from .resilience import (
    ResilienceRow,
    completion_with_deviators,
    resilience_sweep,
)
from .privacy import (
    AttackResult,
    attack_shares,
    exposure_by_coalition_size,
    run_collusion_experiment,
)
from .tables import format_cell, render_table

__all__ = [
    "AttackResult",
    "CartelOutcome",
    "CostSample",
    "DeviationOutcome",
    "FrugalityReport",
    "frugality_by_competition",
    "frugality_of",
    "LeakageReport",
    "RatioSample",
    "ResilienceRow",
    "ScalingFit",
    "best_cartel_gain",
    "cartel_experiment",
    "completion_with_deviators",
    "price_inflation_rows",
    "resilience_sweep",
    "consistent_loser_profiles",
    "entropy_bits",
    "leakage_report",
    "posterior_marginals",
    "repeated_execution_leakage",
    "adversarial_ratios",
    "attack_shares",
    "check_dmw_truthfulness_exhaustive",
    "evaluate_deviation",
    "exposure_by_coalition_size",
    "faithfulness_violations",
    "fit_loglog_slope",
    "format_cell",
    "honest_factory",
    "measure_dmw",
    "measure_minwork",
    "measure_ratio",
    "participation_violations",
    "random_workload_ratios",
    "render_table",
    "run_centralized_minwork_over_network",
    "run_collusion_experiment",
    "run_deviation_matrix",
    "run_with_agents",
    "sweep_agents",
    "sweep_group_size",
    "sweep_tasks",
    "table1_fits",
]
