"""Experiment E7: the privacy guarantee of Theorem 10.

Theorem 10: DMW protects the anonymity of the losing agents and the
privacy of their bids when fewer than ``c`` agents collude — and the
number of colluders needed to expose a bid is *inversely* proportional to
its value (lower bids hide behind higher-degree polynomials).

The experiment mounts the actual attack: it runs the honest protocol,
pools a coalition's received ``e``-shares of a target agent, adds the free
point ``(0, 0)`` every party knows, and tests which candidate degrees are
consistent with the pooled evidence.  A bid is *exposed* exactly when the
coalition can confirm the true degree — which requires at least
``tau + 1 = sigma - bid + 1 >= c + 2`` colluders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.agent import DMWAgent
from ..core.parameters import DMWParameters
from ..core.protocol import DMWProtocol
from ..crypto.secretsharing import DegreeEncodingScheme, Share
from ..scheduling.problem import SchedulingProblem


@dataclass(frozen=True)
class AttackResult:
    """The coalition's knowledge about one (target, task) bid.

    Attributes
    ----------
    exposed:
        True when the coalition confirmed the exact bid.
    inferred_bid:
        The confirmed bid when exposed, else ``None``.
    coalition_size:
        Number of colluding agents (shares pooled).
    required_colluders:
        The theoretical minimum coalition that exposes this bid
        (``sigma - bid + 1``).
    """

    target: int
    task: int
    true_bid: int
    exposed: bool
    inferred_bid: Optional[int]
    coalition_size: int
    required_colluders: int


def attack_shares(parameters: DMWParameters,
                  pooled: Sequence[Share],
                  true_degree: int) -> Tuple[bool, Optional[int]]:
    """Run the degree-confirmation attack on pooled ``e``-shares.

    Candidate degrees are all legal bid encodings.  The coalition exposes
    the bid when the *smallest* consistent candidate equals the true
    degree and is actually testable from the pooled evidence.
    """
    scheme = DegreeEncodingScheme(parameters.group.q,
                                  [share.point for share in pooled])
    candidates = sorted(parameters.first_price_degree_candidates())
    consistency = scheme.reconstruction_attack(pooled, candidates)
    consistent = [degree for degree in candidates if consistency[degree]]
    if not consistent:
        return False, None
    inferred = min(consistent)
    if inferred == true_degree:
        return True, parameters.bid_for_degree(inferred)
    return False, None


def run_collusion_experiment(problem: SchedulingProblem,
                             parameters: DMWParameters,
                             coalition: Sequence[int],
                             seed: int = 0) -> List[AttackResult]:
    """Run honest DMW, then attack every losing agent's bids.

    Parameters
    ----------
    coalition:
        Indices of the colluding agents; they pool the share bundles they
        legitimately received.

    Returns one :class:`AttackResult` per (non-coalition target, task).
    """
    master = random.Random(seed)
    agents = [
        DMWAgent(index, parameters,
                 [int(problem.time(index, task))
                  for task in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(problem.num_agents)
    ]
    protocol = DMWProtocol(parameters, agents)
    outcome = protocol.execute(problem.num_tasks)
    if not outcome.completed:
        raise RuntimeError("honest run aborted: %r" % outcome.abort)
    coalition = sorted(set(coalition))
    results = []
    for target in range(problem.num_agents):
        if target in coalition:
            continue
        for task in range(problem.num_tasks):
            true_bid = int(problem.time(target, task))
            true_degree = parameters.degree_for_bid(true_bid)
            pooled = [
                Share(parameters.pseudonyms[member],
                      agents[member].task_state(task)
                      .received_bundles[target].e_value)
                for member in coalition
            ]
            exposed, inferred = attack_shares(parameters, pooled, true_degree)
            results.append(AttackResult(
                target=target, task=task, true_bid=true_bid,
                exposed=exposed, inferred_bid=inferred,
                coalition_size=len(coalition),
                required_colluders=true_degree + 1,
            ))
    return results


def exposure_by_coalition_size(problem: SchedulingProblem,
                               parameters: DMWParameters,
                               seed: int = 0
                               ) -> List[Tuple[int, int, int]]:
    """Sweep coalition sizes 1..n-1; return (size, exposed, total) rows.

    Coalitions are the lowest-indexed agents of each size, so results are
    deterministic.
    """
    rows = []
    for size in range(1, problem.num_agents):
        coalition = list(range(size))
        results = run_collusion_experiment(problem, parameters, coalition,
                                           seed)
        exposed = sum(1 for result in results if result.exposed)
        rows.append((size, exposed, len(results)))
    return rows
