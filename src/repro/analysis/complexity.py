"""Experiment E1/E2: regenerating Table 1 by measurement.

Table 1 of the paper:

=========  ==================  ====================
mechanism  communication cost  computational cost
=========  ==================  ====================
MinWork    Theta(m n)          Theta(m n)
DMW        Theta(m n^2)        O(m n^2 log p)
=========  ==================  ====================

This module *measures* both columns: it runs centralized MinWork over the
network simulator (agents unicast each bid value to a trusted center, per
the remark after Theorem 11) and full DMW, recording actual message counts
and actual counted modular-multiplication work, then fits log-log slopes
over sweeps of ``n``, ``m``, and ``log p`` to compare the measured scaling
exponents against the predicted ones.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.parameters import DMWParameters
from ..core.protocol import run_dmw
from ..crypto.groups import GroupParameters, fixture_group
from ..mechanisms.minwork import MinWork
from ..network.simulator import SynchronousNetwork
from ..scheduling import workloads
from ..scheduling.problem import SchedulingProblem


@dataclass(frozen=True)
class CostSample:
    """One measured data point of a cost sweep."""

    num_agents: int
    num_tasks: int
    p_bits: int
    messages: int
    field_elements: int
    computation: int
    rounds: int


def run_centralized_minwork_over_network(problem: SchedulingProblem
                                         ) -> Tuple[CostSample, object]:
    """Run MinWork with a trusted center over the simulator.

    Each agent unicasts its ``m`` bid values to the center (``Theta(mn)``
    messages); the center computes the outcome (``Theta(mn)`` elementary
    operations) and publishes the schedule and payments.  Returns the
    measured :class:`CostSample` and the mechanism result.
    """
    n, m = problem.num_agents, problem.num_tasks
    network = SynchronousNetwork(n, extra_participants=1)
    center = n
    for agent in range(n):
        for task in range(m):
            network.send(agent, center, "bid",
                         (task, problem.time(agent, task)), field_elements=1)
    network.deliver()
    received: Dict[int, List[float]] = {agent: [0.0] * m for agent in range(n)}
    for message in network.receive(center, "bid"):
        task, value = message.payload
        received[message.sender][task] = value
    bids = SchedulingProblem([received[agent] for agent in range(n)])
    mechanism = MinWork()
    result = mechanism.run(bids)
    network.send(center, 0, "outcome",
                 (result.schedule.assignment, result.payments),
                 field_elements=m + n)
    for agent in range(1, n):
        network.send(center, agent, "outcome",
                     (result.schedule.assignment, result.payments),
                     field_elements=m + n)
    network.deliver()
    metrics = network.metrics
    sample = CostSample(
        num_agents=n, num_tasks=m, p_bits=0,
        messages=metrics.point_to_point_messages,
        field_elements=metrics.field_elements,
        computation=mechanism.last_operation_count,
        rounds=metrics.rounds,
    )
    return sample, result


def measure_minwork(num_agents: int, num_tasks: int,
                    seed: int = 0) -> CostSample:
    """Measured MinWork costs on a random discrete workload."""
    rng = random.Random(seed)
    problem = workloads.uniform_random(num_agents, num_tasks, rng)
    sample, _ = run_centralized_minwork_over_network(problem)
    return sample


def measure_dmw(num_agents: int, num_tasks: int, fault_bound: int = 1,
                group_size: str = "small", seed: int = 0,
                group_parameters: Optional[GroupParameters] = None
                ) -> CostSample:
    """Measured DMW costs (messages + max per-agent multiplication work)."""
    rng = random.Random(seed)
    parameters = DMWParameters.generate(
        num_agents, fault_bound=fault_bound,
        group_parameters=group_parameters, group_size=group_size,
    )
    problem = workloads.random_discrete(num_agents, num_tasks,
                                        parameters.bid_values, rng)
    outcome = run_dmw(problem, parameters=parameters, rng=rng)
    if not outcome.completed:
        raise RuntimeError("honest DMW run aborted: %r" % outcome.abort)
    metrics = outcome.network_metrics
    return CostSample(
        num_agents=num_agents, num_tasks=num_tasks,
        p_bits=parameters.group.p_bits,
        messages=metrics.point_to_point_messages,
        field_elements=metrics.field_elements,
        computation=outcome.max_agent_work,
        rounds=metrics.rounds,
    )


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    This is the measured scaling exponent: ~1 for linear, ~2 for quadratic.
    Implemented directly (no numpy dependency in the library core).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching samples")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    mean_x = sum(log_x) / len(log_x)
    mean_y = sum(log_y) / len(log_y)
    numerator = sum((lx - mean_x) * (ly - mean_y)
                    for lx, ly in zip(log_x, log_y))
    denominator = sum((lx - mean_x) ** 2 for lx in log_x)
    if denominator == 0:
        raise ValueError("x values must not be constant")
    return numerator / denominator


@dataclass(frozen=True)
class ScalingFit:
    """A fitted scaling exponent with its predicted value."""

    variable: str
    mechanism: str
    quantity: str
    measured_exponent: float
    predicted_exponent: float
    samples: Tuple[CostSample, ...]

    @property
    def within(self) -> float:
        """Absolute deviation from the prediction."""
        return abs(self.measured_exponent - self.predicted_exponent)


def sweep_agents(agent_counts: Sequence[int], num_tasks: int = 2,
                 measure: Callable = measure_dmw,
                 **kwargs) -> List[CostSample]:
    """Measure costs across a sweep of ``n`` at fixed ``m``."""
    return [measure(n, num_tasks, **kwargs) for n in agent_counts]


def sweep_tasks(task_counts: Sequence[int], num_agents: int = 6,
                measure: Callable = measure_dmw,
                **kwargs) -> List[CostSample]:
    """Measure costs across a sweep of ``m`` at fixed ``n``."""
    return [measure(num_agents, m, **kwargs) for m in task_counts]


def sweep_group_size(sizes: Sequence[str], num_agents: int = 6,
                     num_tasks: int = 2) -> List[CostSample]:
    """Measure DMW computation across cryptographic group sizes.

    Exercises the ``log p`` factor of Theorem 12: message counts must not
    change, multiplication work must grow roughly linearly in ``p_bits``.
    """
    samples = []
    for size in sizes:
        samples.append(measure_dmw(num_agents, num_tasks, group_size=size))
    return samples


def table1_fits(agent_counts: Sequence[int] = (4, 6, 8, 10, 12),
                task_counts: Sequence[int] = (1, 2, 4, 6, 8),
                ) -> List[ScalingFit]:
    """Fit every scaling exponent Table 1 predicts.

    Returns eight fits: {MinWork, DMW} x {communication, computation} x
    {n-sweep, m-sweep} with predictions (1, 2, 1, 1) for communication in
    (MinWork-n is actually 1; DMW-n is 2; both m-sweeps are 1) and the
    analogous computation rows.
    """
    fits: List[ScalingFit] = []
    specs = [
        ("minwork", measure_minwork, {"n": 1.0, "m": 1.0},
         {"n": 1.0, "m": 1.0}),
        ("dmw", measure_dmw, {"n": 2.0, "m": 1.0}, {"n": 2.0, "m": 1.0}),
    ]
    for name, measure, comm_predictions, comp_predictions in specs:
        n_samples = sweep_agents(agent_counts, measure=measure)
        m_samples = sweep_tasks(task_counts, measure=measure)
        for variable, samples, axis in (
            ("n", n_samples, [s.num_agents for s in n_samples]),
            ("m", m_samples, [s.num_tasks for s in m_samples]),
        ):
            comm_prediction = (comm_predictions[variable])
            comp_prediction = (comp_predictions[variable])
            fits.append(ScalingFit(
                variable=variable, mechanism=name, quantity="communication",
                measured_exponent=fit_loglog_slope(
                    axis, [s.messages for s in samples]),
                predicted_exponent=comm_prediction,
                samples=tuple(samples),
            ))
            fits.append(ScalingFit(
                variable=variable, mechanism=name, quantity="computation",
                measured_exponent=fit_loglog_slope(
                    axis, [s.computation for s in samples]),
                predicted_exponent=comp_prediction,
                samples=tuple(samples),
            ))
    return fits
