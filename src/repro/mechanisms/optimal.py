"""Exact minimum-makespan scheduling (the baseline MinWork approximates).

MinWork is an ``n``-approximation of the makespan optimum (paper §1.1 /
[30]); reproducing that claim (experiment E8) needs the true optimum.  The
problem is strongly NP-hard, so this is a branch-and-bound search intended
for the small instances the experiments use (roughly ``n * m <= 60``
with ``n^m`` pruned hard).

The search orders tasks by decreasing best-case time and prunes on:

* the current partial makespan already reaching the incumbent,
* a per-task lower bound (each unassigned task costs at least its fastest
  agent's time on *some* machine),
* agent-symmetric dominance at depth 0 is not exploited (machines are
  unrelated, so there is no symmetry to break).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..scheduling.problem import SchedulingProblem
from ..scheduling.schedule import Schedule


def greedy_makespan_schedule(problem: SchedulingProblem) -> Schedule:
    """List-scheduling heuristic: assign each task where it finishes earliest.

    Used as the initial incumbent for branch and bound and available as a
    cheap standalone baseline.
    """
    loads = [0.0] * problem.num_agents
    assignment = [0] * problem.num_tasks
    order = sorted(range(problem.num_tasks),
                   key=lambda j: -min(problem.task_times(j)))
    for task in order:
        best_agent = min(
            range(problem.num_agents),
            key=lambda i: (loads[i] + problem.time(i, task), i),
        )
        assignment[task] = best_agent
        loads[best_agent] += problem.time(best_agent, task)
    return Schedule(assignment, problem.num_agents)


def optimal_makespan_schedule(problem: SchedulingProblem,
                              node_limit: int = 2_000_000
                              ) -> Tuple[Schedule, float]:
    """Return an exact minimum-makespan schedule and its makespan.

    Parameters
    ----------
    problem:
        The instance (interpreted as declared times).
    node_limit:
        Safety valve on search nodes; exceeded limits raise ``RuntimeError``
        rather than silently returning a non-optimal answer.
    """
    n, m = problem.num_agents, problem.num_tasks
    order = sorted(range(m), key=lambda j: -min(problem.task_times(j)))
    best_times = [min(problem.task_times(j)) for j in range(m)]
    # remaining_bound[k] = max over tasks order[k:] of their best-case time:
    # any completion must reach at least that much on some machine.
    remaining_bound = [0.0] * (m + 1)
    for k in range(m - 1, -1, -1):
        remaining_bound[k] = max(remaining_bound[k + 1], best_times[order[k]])

    incumbent_schedule = greedy_makespan_schedule(problem)
    incumbent = incumbent_schedule.makespan(problem)
    assignment = [0] * m
    best_assignment = list(incumbent_schedule.assignment)
    loads = [0.0] * n
    nodes = 0

    def search(depth: int) -> None:
        nonlocal incumbent, nodes, best_assignment
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                "branch-and-bound exceeded %d nodes; instance too large"
                % node_limit
            )
        if depth == m:
            makespan = max(loads)
            if makespan < incumbent - 1e-12:
                incumbent = makespan
                best_assignment = assignment[:]
            return
        if max(max(loads), remaining_bound[depth]) >= incumbent - 1e-12:
            return
        task = order[depth]
        # Try agents in order of resulting load (best-first) to tighten the
        # incumbent quickly.
        candidates = sorted(range(n),
                            key=lambda i: loads[i] + problem.time(i, task))
        for agent in candidates:
            new_load = loads[agent] + problem.time(agent, task)
            if new_load >= incumbent - 1e-12:
                continue
            loads[agent] = new_load
            assignment[task] = agent
            search(depth + 1)
            loads[agent] = new_load - problem.time(agent, task)

    search(0)
    schedule = Schedule(best_assignment, n)
    return schedule, schedule.makespan(problem)


def makespan_approximation_ratio(problem: SchedulingProblem,
                                 schedule: Schedule) -> float:
    """Return ``makespan(schedule) / optimal_makespan`` for ``problem``."""
    _, optimum = optimal_makespan_schedule(problem)
    if optimum <= 0:
        raise ValueError("optimal makespan must be positive")
    return schedule.makespan(problem) / optimum
