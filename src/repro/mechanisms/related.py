"""Truthful scheduling on *related* machines (the paper's future work).

The conclusion of the paper names "designing distributed versions of the
centralized mechanism for scheduling on related machines proposed in
[Archer-Tardos]" as future work.  This module implements the centralized
side of that program for the single-parameter domain Archer and Tardos
introduced:

* each agent's private type is one number ``b_i`` — its *inverse speed*
  (time per unit of work); task ``j`` has a public size ``r_j``; agent
  ``i`` completes the tasks assigned to it in ``b_i * (assigned work)``;
* an allocation rule is truthfully implementable iff each agent's
  assigned work ``w_i(b_i)`` is non-increasing in its own bid
  (monotonicity), and the unique normalized truthful payment is Myerson's

  ``P_i(b) = b_i * w_i(b_i) + integral_{b_i}^{inf} w_i(u) du``.

Over a *discrete* bid grid (which DMW needs anyway) the integral is the
finite sum ``sum_{u > b_i, u in grid} w_i(u) * delta(u)`` with
``w_i(grid_max+) = 0`` beyond the grid, evaluated by rerunning the
allocation — exact, no estimation.

Two allocation rules are provided:

* :class:`GreedyWorkSplit` — the monotone LPT-style heuristic: tasks in
  decreasing size, each to the machine finishing it earliest under
  declared speeds, with deterministic bid-then-index tie-breaking;
* exact min-makespan (via :mod:`repro.mechanisms.optimal`), whose
  monotonicity requires consistent tie-breaking and is *checked
  empirically* by the test suite rather than assumed.

Truthfulness of :class:`MyersonRelatedMachines` is therefore testable end
to end: exhaustive unilateral deviations over the grid must never help —
and for allocation rules that are *not* monotone the same harness
exhibits a violation (see ``tests/test_related.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..scheduling.problem import SchedulingProblem
from ..scheduling.schedule import Schedule

#: An allocation rule maps (inverse speeds, task sizes) -> Schedule.
AllocationRule = Callable[[Sequence[float], Sequence[float]], Schedule]


def related_problem(inverse_speeds: Sequence[float],
                    sizes: Sequence[float]) -> SchedulingProblem:
    """Build the unrelated-machines view ``t_i^j = b_i * r_j``."""
    return SchedulingProblem(
        [[b * r for r in sizes] for b in inverse_speeds]
    )


def assigned_work(schedule: Schedule, sizes: Sequence[float],
                  agent: int) -> float:
    """Total size of the tasks ``agent`` received."""
    return sum(sizes[j] for j in schedule.tasks_of(agent))


class GreedyWorkSplit:
    """Monotone LPT-style allocation for related machines.

    Tasks are placed in decreasing size order on the machine that would
    finish them earliest given the *declared* inverse speeds, ties broken
    by (declared bid, index).  Raising one's own bid can only shed work
    under this rule, which the tests verify exhaustively on grids.
    """

    def __call__(self, inverse_speeds: Sequence[float],
                 sizes: Sequence[float]) -> Schedule:
        n = len(inverse_speeds)
        loads = [0.0] * n  # completion time under declared speeds
        assignment = [0] * len(sizes)
        order = sorted(range(len(sizes)), key=lambda j: (-sizes[j], j))
        for task in order:
            best = min(
                range(n),
                key=lambda i: (loads[i] + inverse_speeds[i] * sizes[task],
                               inverse_speeds[i], i),
            )
            assignment[task] = best
            loads[best] += inverse_speeds[best] * sizes[task]
        return Schedule(assignment, n)


class ExactMakespanAllocation:
    """Exact min-makespan allocation under declared speeds.

    Ties between optimal schedules are broken by preferring *less* work
    on higher-bid machines (lexicographic work vector ordered by
    decreasing bid), which is what keeps the rule monotone in practice;
    the test suite checks monotonicity exhaustively on small grids.
    """

    def __init__(self, node_limit: int = 500_000) -> None:
        self.node_limit = node_limit

    def __call__(self, inverse_speeds: Sequence[float],
                 sizes: Sequence[float]) -> Schedule:
        import itertools
        n = len(inverse_speeds)
        best_schedule, best_key = None, None
        # Exhaustive for the small instances the experiments use.
        for combo in itertools.product(range(n), repeat=len(sizes)):
            schedule = Schedule(list(combo), n)
            loads = [0.0] * n
            for task, agent in enumerate(combo):
                loads[agent] += inverse_speeds[agent] * sizes[task]
            makespan = max(loads)
            # Secondary key: work on machines sorted by decreasing bid —
            # prefer unloading slow (high-bid) machines.
            slow_order = sorted(range(n),
                                key=lambda i: (-inverse_speeds[i], i))
            work_vector = tuple(assigned_work(schedule, sizes, i)
                                for i in slow_order)
            key = (makespan, work_vector)
            if best_key is None or key < best_key:
                best_schedule, best_key = schedule, key
        return best_schedule


@dataclass(frozen=True)
class RelatedResult:
    """Outcome of the related-machines mechanism."""

    schedule: Schedule
    payments: Tuple[float, ...]

    def utility(self, agent: int, true_inverse_speed: float,
                sizes: Sequence[float]) -> float:
        """``P_i - b_i * (assigned work)`` with the *true* type."""
        work = assigned_work(self.schedule, sizes, agent)
        return self.payments[agent] - true_inverse_speed * work


class MyersonRelatedMachines:
    """Monotone allocation + exact Myerson payments over a bid grid.

    Parameters
    ----------
    sizes:
        Public task sizes ``r_j``.
    bid_grid:
        The discrete, ascending set of legal inverse-speed bids.
    allocation:
        The allocation rule; defaults to :class:`GreedyWorkSplit`.
    """

    def __init__(self, sizes: Sequence[float], bid_grid: Sequence[float],
                 allocation: Optional[AllocationRule] = None) -> None:
        if not sizes or any(r <= 0 for r in sizes):
            raise ValueError("task sizes must be positive")
        grid = list(bid_grid)
        if grid != sorted(set(grid)) or not grid or grid[0] <= 0:
            raise ValueError("bid grid must be ascending positives")
        self.sizes = list(sizes)
        self.bid_grid = grid
        self.allocation = allocation or GreedyWorkSplit()

    def _validate_bids(self, bids: Sequence[float]) -> None:
        for bid in bids:
            if bid not in self.bid_grid:
                raise ValueError("bid %r not in the published grid" % bid)

    def work_curve(self, bids: Sequence[float], agent: int) -> List[float]:
        """``w_agent(u)`` for every grid value ``u`` (others fixed).

        The monotonicity certificate: for a truthful mechanism this list
        must be non-increasing.
        """
        curve = []
        for u in self.bid_grid:
            trial = list(bids)
            trial[agent] = u
            schedule = self.allocation(trial, self.sizes)
            curve.append(assigned_work(schedule, self.sizes, agent))
        return curve

    def run(self, bids: Sequence[float]) -> RelatedResult:
        """Allocate and pay (exact discrete Myerson payments).

        On the grid ``u_1 < ... < u_k`` the Myerson integral for an agent
        bidding ``u_t`` is evaluated with the step interpretation — the
        work curve is piecewise constant, changing only at grid points:

        ``P_i = u_t * w(u_t) + sum_{s > t} (u_s - u_{s-1}) * w(u_s)``

        which makes every grid deviation exactly utility-neutral-or-worse
        (the discrete analogue of the integral payment).
        """
        self._validate_bids(bids)
        schedule = self.allocation(bids, self.sizes)
        payments = []
        for agent, bid in enumerate(bids):
            curve = self.work_curve(bids, agent)
            index = self.bid_grid.index(bid)
            own_work = assigned_work(schedule, self.sizes, agent)
            payment = bid * own_work
            for s in range(index + 1, len(self.bid_grid)):
                step = self.bid_grid[s] - self.bid_grid[s - 1]
                payment += step * curve[s]
            payments.append(payment)
        return RelatedResult(schedule=schedule, payments=tuple(payments))

    # -- property checkers -------------------------------------------------------
    def check_monotonicity(self, bids: Sequence[float]
                           ) -> Optional[Tuple[int, List[float]]]:
        """Return ``(agent, curve)`` for the first non-monotone work curve,
        or ``None`` if all are non-increasing."""
        for agent in range(len(bids)):
            curve = self.work_curve(bids, agent)
            if any(b > a + 1e-9 for a, b in zip(curve, curve[1:])):
                return agent, curve
        return None

    def check_truthfulness(self, true_types: Sequence[float]
                           ) -> Optional[Tuple[int, float, float, float]]:
        """Exhaustive unilateral grid deviations; first violation or None."""
        self._validate_bids(true_types)
        baseline = self.run(list(true_types))
        for agent, true_type in enumerate(true_types):
            honest = baseline.utility(agent, true_type, self.sizes)
            for deviation in self.bid_grid:
                if deviation == true_type:
                    continue
                bids = list(true_types)
                bids[agent] = deviation
                result = self.run(bids)
                utility = result.utility(agent, true_type, self.sizes)
                if utility > honest + 1e-9:
                    return agent, deviation, honest, utility
        return None
