"""Centralized scheduling mechanisms (the baselines DMW distributes)."""

from .base import (
    Bids,
    CentralizedMechanism,
    MechanismResult,
    random_bid_row,
    truthful_bids,
    unilateral_deviation,
)
from .minwork import MinWork, minwork_first_and_second_price
from .optimal import (
    greedy_makespan_schedule,
    makespan_approximation_ratio,
    optimal_makespan_schedule,
)
from .properties import (
    Violation,
    check_truthfulness_exhaustive,
    check_truthfulness_sampled,
    check_voluntary_participation,
)
from .related import (
    ExactMakespanAllocation,
    GreedyWorkSplit,
    MyersonRelatedMachines,
    RelatedResult,
    assigned_work,
    related_problem,
)
from .randomized import (
    BiasedRandomNMachines,
    RandomizedTwoMachines,
    biased_auction,
    expected_makespan,
)
from .vcg import VCG, makespan_objective, total_work_objective

__all__ = [
    "BiasedRandomNMachines",
    "Bids",
    "CentralizedMechanism",
    "ExactMakespanAllocation",
    "GreedyWorkSplit",
    "MechanismResult",
    "MinWork",
    "MyersonRelatedMachines",
    "RelatedResult",
    "assigned_work",
    "related_problem",
    "RandomizedTwoMachines",
    "VCG",
    "Violation",
    "biased_auction",
    "check_truthfulness_exhaustive",
    "check_truthfulness_sampled",
    "check_voluntary_participation",
    "expected_makespan",
    "greedy_makespan_schedule",
    "makespan_approximation_ratio",
    "makespan_objective",
    "minwork_first_and_second_price",
    "optimal_makespan_schedule",
    "random_bid_row",
    "total_work_objective",
    "truthful_bids",
    "unilateral_deviation",
]
