"""Centralized mechanism abstractions (paper §2.2, Definitions 1-4).

A centralized mechanism receives a bid matrix ``y`` (one row per agent, one
column per task), computes an allocation ``S(y)`` and a payment vector
``P(y)``, and hands each agent utility ``U_i = P_i(y) + V_i(S(y), t_i)``
where the valuation ``V_i`` is the negated sum of the agent's *true* times
over its allocated tasks.

Fig. 1 of the paper is exactly this interface.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..scheduling.problem import SchedulingProblem
from ..scheduling.schedule import Schedule

#: A bid matrix has the same shape as a time matrix, so it reuses the
#: problem type: ``bids.time(i, j)`` is agent i's reported value for task j.
Bids = SchedulingProblem


@dataclass(frozen=True)
class MechanismResult:
    """The outcome of one mechanism execution.

    Attributes
    ----------
    schedule:
        The allocation ``S(y)``.
    payments:
        ``payments[i]`` is ``P_i(y)``, the amount handed *to* agent ``i``.
    """

    schedule: Schedule
    payments: Tuple[float, ...]

    def utility(self, agent: int, true_values: SchedulingProblem) -> float:
        """Return ``U_i = P_i + V_i(S, t_i)`` for ``agent``."""
        return self.payments[agent] + self.schedule.valuation(agent, true_values)

    def utilities(self, true_values: SchedulingProblem) -> List[float]:
        """Return the utility vector for all agents."""
        return [self.utility(agent, true_values)
                for agent in range(self.schedule.num_agents)]


class CentralizedMechanism(abc.ABC):
    """Interface every centralized scheduling mechanism implements."""

    @abc.abstractmethod
    def allocate(self, bids: Bids) -> Schedule:
        """Compute the allocation ``S(y)`` from the bid matrix."""

    @abc.abstractmethod
    def payments(self, bids: Bids, schedule: Schedule) -> List[float]:
        """Compute the payment vector ``P(y)`` for a given allocation."""

    def run(self, bids: Bids) -> MechanismResult:
        """Allocate, compute payments, and package the result."""
        schedule = self.allocate(bids)
        return MechanismResult(
            schedule=schedule, payments=tuple(self.payments(bids, schedule))
        )


def truthful_bids(problem: SchedulingProblem) -> Bids:
    """Return the bid matrix of universally truthful agents (``y = t``)."""
    return problem


def unilateral_deviation(bids: Bids, agent: int,
                         row: Sequence[float]) -> Bids:
    """Return ``{y_{-agent}, row}`` — one agent's report swapped."""
    return bids.with_agent_row(agent, row)


def random_bid_row(num_tasks: int, rng: random.Random,
                   low: float = 1.0, high: float = 100.0) -> List[float]:
    """Draw a uniformly random bid row (used by sampled property checks)."""
    return [rng.uniform(low, high) for _ in range(num_tasks)]
