"""The MinWork mechanism of Nisan & Ronen (paper Definition 5).

MinWork allocates each task to the agent bidding the lowest execution time
and pays each winner, per task won, the *second-lowest* bid for that task
(eq. (1)) — i.e. it runs ``m`` parallel, independent Vickrey auctions.  It
minimizes total work exactly, and is therefore an ``n``-approximation for
the makespan objective.

The implementation exposes its elementary operation count so the
``Theta(mn)`` computational-cost row of Table 1 can be measured rather than
assumed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..scheduling.schedule import Schedule
from .base import Bids, CentralizedMechanism, MechanismResult


class MinWork(CentralizedMechanism):
    """MinWork: per-task lowest-bid allocation with Vickrey payments.

    Parameters
    ----------
    tie_break:
        ``"lowest_index"`` (default) awards ties to the smallest agent
        index — matching DMW's smallest-pseudonym rule, which makes
        outcome-equivalence testable.  ``"random"`` matches Definition 5's
        "allocation is random when there is more than one agent with
        minimum type" and requires ``rng``.
    rng:
        Randomness source for ``tie_break="random"``.
    """

    def __init__(self, tie_break: str = "lowest_index",
                 rng: Optional[random.Random] = None) -> None:
        if tie_break not in ("lowest_index", "random"):
            raise ValueError("tie_break must be 'lowest_index' or 'random'")
        if tie_break == "random" and rng is None:
            raise ValueError("tie_break='random' requires an rng")
        self.tie_break = tie_break
        self.rng = rng
        #: Elementary operations (comparisons) performed by the most recent
        #: ``allocate`` + ``payments`` pair; the measurable side of the
        #: Theta(mn) claim.
        self.last_operation_count = 0

    def allocate(self, bids: Bids) -> Schedule:
        """Allocate each task to a lowest bidder."""
        self.last_operation_count = 0
        assignment = []
        for task in range(bids.num_tasks):
            column = bids.task_times(task)
            self.last_operation_count += len(column)
            best = min(column)
            winners = [agent for agent, bid in enumerate(column) if bid == best]
            if len(winners) == 1 or self.tie_break == "lowest_index":
                assignment.append(winners[0])
            else:
                assignment.append(self.rng.choice(winners))
        return Schedule(assignment, bids.num_agents)

    def payments(self, bids: Bids, schedule: Schedule) -> List[float]:
        """Vickrey payments: ``P_i = sum_{j in S_i} min_{i' != i} y_{i'}^j``."""
        if bids.num_agents < 2:
            raise ValueError(
                "MinWork payments need at least two agents (no second price "
                "exists with one)"
            )
        totals = [0.0] * bids.num_agents
        for task in range(bids.num_tasks):
            winner = schedule.agent_of(task)
            column = bids.task_times(task)
            self.last_operation_count += len(column)
            second_price = min(bid for agent, bid in enumerate(column)
                               if agent != winner)
            totals[winner] += second_price
        return totals

    def run_with_cost(self, bids: Bids) -> Tuple[MechanismResult, int]:
        """Run the mechanism and also return its elementary operation count."""
        result = self.run(bids)
        return result, self.last_operation_count


def minwork_first_and_second_price(column: Tuple[float, ...],
                                   tie_break_lowest_index: bool = True
                                   ) -> Tuple[int, float, float]:
    """Return ``(winner, first_price, second_price)`` for one task column.

    Helper shared by tests and by the DMW-vs-MinWork equivalence checks.
    """
    if len(column) < 2:
        raise ValueError("need at least two bids for a second price")
    first_price = min(column)
    winner = column.index(first_price)
    second_price = min(bid for agent, bid in enumerate(column)
                       if agent != winner)
    return winner, first_price, second_price
