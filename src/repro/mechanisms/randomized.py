"""Nisan-Ronen's randomized mechanism for two machines (extension).

The paper's related-work section highlights the randomized
7/4-approximation mechanism for scheduling on two machines from [30]
(later generalized to ``n`` machines by Mu'alem and Schapira).  We include
a reconstruction as an optional extension of the mechanism library:

For each task independently, a fair coin picks a *favored* machine; the
task is then sold through a **biased Vickrey auction** with bias
``beta = 4/3``: the favored machine ``i`` wins iff ``y_i <= beta * y_other``
and is paid its threshold ``beta * y_other``; otherwise the other machine
wins and is paid its threshold ``y_i / beta``.  Every realized auction is a
monotone allocation with threshold payments, hence truthful, so the
randomized mechanism is *universally* truthful; its expected makespan is
within 7/4 of optimal on two machines.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional, Sequence, Tuple

from ..scheduling.problem import SchedulingProblem
from ..scheduling.schedule import Schedule
from .base import Bids, CentralizedMechanism, MechanismResult


def biased_auction(bids: Tuple[float, float], favored: int,
                   beta: float) -> Tuple[int, float]:
    """Run one biased Vickrey auction between two bids.

    Returns ``(winner, payment_to_winner)``.  ``favored`` wins on ties of
    the biased comparison.
    """
    if beta < 1:
        raise ValueError("beta must be at least 1")
    other = 1 - favored
    if bids[favored] <= beta * bids[other]:
        return favored, beta * bids[other]
    return other, bids[favored] / beta


class RandomizedTwoMachines(CentralizedMechanism):
    """The biased-coin randomized mechanism for exactly two machines.

    Parameters
    ----------
    rng:
        Coin source; the realized mechanism depends on it.
    beta:
        Auction bias (4/3 gives the 7/4 expected approximation).
    coins:
        Optional pre-committed coin vector (one favored machine per task);
        used by the exact-expectation analysis to enumerate outcomes.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 beta: float = 4.0 / 3.0,
                 coins: Optional[Sequence[int]] = None) -> None:
        if rng is None and coins is None:
            raise ValueError("provide an rng or explicit coins")
        self.rng = rng
        self.beta = beta
        self.coins = list(coins) if coins is not None else None
        self._last_coins: List[int] = []

    def _draw_coins(self, num_tasks: int) -> List[int]:
        if self.coins is not None:
            if len(self.coins) != num_tasks:
                raise ValueError("coin vector length mismatch")
            return list(self.coins)
        return [self.rng.randrange(2) for _ in range(num_tasks)]

    def allocate(self, bids: Bids) -> Schedule:
        if bids.num_agents != 2:
            raise ValueError("this mechanism is defined for exactly 2 machines")
        self._last_coins = self._draw_coins(bids.num_tasks)
        assignment = []
        for task, favored in enumerate(self._last_coins):
            column = bids.task_times(task)
            winner, _ = biased_auction((column[0], column[1]), favored,
                                       self.beta)
            assignment.append(winner)
        return Schedule(assignment, 2)

    def payments(self, bids: Bids, schedule: Schedule) -> List[float]:
        totals = [0.0, 0.0]
        for task, favored in enumerate(self._last_coins):
            column = bids.task_times(task)
            winner, payment = biased_auction((column[0], column[1]), favored,
                                             self.beta)
            if winner != schedule.agent_of(task):
                raise RuntimeError("payments called with a mismatched schedule")
            totals[winner] += payment
        return totals


class BiasedRandomNMachines(CentralizedMechanism):
    """A natural n-machine generalization of the biased mechanism.

    The paper's related work points at Mu'alem and Schapira's
    generalization of the 2-machine randomized mechanism to ``n``
    machines; this class implements the natural per-task construction
    (documented as a reconstruction — we *measure* its approximation
    behaviour rather than claim their exact ratio):

    For each task independently, a uniformly random machine ``F`` is
    favored.  ``F`` wins iff ``y_F <= beta * min_{k != F} y_k``; otherwise
    the overall lowest bidder wins (ties to the lowest index).  Both rules
    are monotone in every agent's bid, so threshold payments make each
    coin realization truthful (hence the mechanism is universally
    truthful):

    * the favored machine's threshold is ``beta * min_others``;
    * a non-favored winner ``i``'s threshold is
      ``min(m2, y_F / beta)`` where ``m2`` is the minimum bid among
      machines other than ``i`` and ``F``.

    With ``beta = 1`` every realization degenerates to the Vickrey
    auction, i.e. exactly MinWork.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 beta: float = 4.0 / 3.0,
                 coins: Optional[Sequence[int]] = None) -> None:
        if rng is None and coins is None:
            raise ValueError("provide an rng or explicit coins")
        if beta < 1:
            raise ValueError("beta must be at least 1")
        self.rng = rng
        self.beta = beta
        self.coins = list(coins) if coins is not None else None
        self._last_coins: List[int] = []

    def _draw_coins(self, bids: Bids) -> List[int]:
        if self.coins is not None:
            if len(self.coins) != bids.num_tasks:
                raise ValueError("coin vector length mismatch")
            if any(not 0 <= c < bids.num_agents for c in self.coins):
                raise ValueError("coin values must be machine indices")
            return list(self.coins)
        return [self.rng.randrange(bids.num_agents)
                for _ in range(bids.num_tasks)]

    def _task_winner(self, column: Tuple[float, ...],
                     favored: int) -> int:
        min_others = min(bid for k, bid in enumerate(column) if k != favored)
        if column[favored] <= self.beta * min_others:
            return favored
        lowest = min(column)
        return column.index(lowest)

    def allocate(self, bids: Bids) -> Schedule:
        if bids.num_agents < 2:
            raise ValueError("need at least two machines")
        self._last_coins = self._draw_coins(bids)
        assignment = [
            self._task_winner(bids.task_times(task), favored)
            for task, favored in enumerate(self._last_coins)
        ]
        return Schedule(assignment, bids.num_agents)

    def payments(self, bids: Bids, schedule: Schedule) -> List[float]:
        totals = [0.0] * bids.num_agents
        for task, favored in enumerate(self._last_coins):
            column = bids.task_times(task)
            winner = schedule.agent_of(task)
            if winner != self._task_winner(column, favored):
                raise RuntimeError("payments called with a mismatched "
                                   "schedule")
            min_others = min(bid for k, bid in enumerate(column)
                             if k != favored)
            if winner == favored:
                totals[winner] += self.beta * min_others
            else:
                rest = [bid for k, bid in enumerate(column)
                        if k not in (winner, favored)]
                m2 = min(rest) if rest else float("inf")
                totals[winner] += min(m2, column[favored] / self.beta)
        return totals


def expected_makespan(bids: SchedulingProblem,
                      beta: float = 4.0 / 3.0) -> float:
    """Exact expected makespan of the randomized mechanism (2 machines).

    Enumerates all ``2^m`` coin vectors, so use only for small ``m``.
    """
    if bids.num_agents != 2:
        raise ValueError("defined for exactly 2 machines")
    m = bids.num_tasks
    total = 0.0
    for coins in itertools.product((0, 1), repeat=m):
        mechanism = RandomizedTwoMachines(coins=coins, beta=beta)
        schedule = mechanism.allocate(bids)
        total += schedule.makespan(bids)
    return total / (2 ** m)
