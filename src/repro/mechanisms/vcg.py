"""Generic Vickrey-Clarke-Groves mechanism for scheduling.

The paper situates MinWork inside the VCG family: MinWork is exactly the
VCG mechanism with Clarke pivot payments applied to the *total work*
objective (which decomposes per task into independent Vickrey auctions).
This module implements VCG generically — exact minimization of a
separable-or-not social-cost objective with Clarke payments — so that:

* the MinWork ≡ VCG(total_work) identity can be tested (it is a strong
  cross-check of both implementations), and
* the non-separable makespan objective can be run as a (computationally
  exponential) truthful reference point.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence

from ..scheduling.problem import SchedulingProblem
from ..scheduling.schedule import Schedule
from .base import Bids, CentralizedMechanism

#: An objective maps (schedule, bids) to the social cost to minimize.
Objective = Callable[[Schedule, SchedulingProblem], float]


def total_work_objective(schedule: Schedule, bids: SchedulingProblem) -> float:
    """The MinWork objective: total declared work."""
    return schedule.total_work(bids)


def makespan_objective(schedule: Schedule, bids: SchedulingProblem) -> float:
    """The makespan objective (exact VCG on this is truthful but exponential)."""
    return schedule.makespan(bids)


def _enumerate_schedules(num_tasks: int, agents: Sequence[int],
                         num_agents: int):
    """Yield every assignment of ``num_tasks`` tasks to the given agents."""
    for combo in itertools.product(agents, repeat=num_tasks):
        yield Schedule(list(combo), num_agents)


class VCG(CentralizedMechanism):
    """Exact VCG with Clarke pivot payments.

    The allocation minimizes ``objective`` by exhaustive search (``n^m``
    schedules), so this is a reference implementation for small instances,
    not a production scheduler.  Clarke payments are

    ``P_i = cost_{-i}(S_{-i}) - cost_{-i}(S)``,

    where ``cost_{-i}`` excludes agent ``i``'s declared cost and ``S_{-i}``
    optimizes the economy without agent ``i``.  For the separable
    total-work objective this reduces exactly to eq. (1)'s per-task second
    prices.

    Parameters
    ----------
    objective:
        The social-cost function; defaults to total work (= MinWork).
    """

    def __init__(self, objective: Objective = total_work_objective) -> None:
        self.objective = objective

    def allocate(self, bids: Bids) -> Schedule:
        """Return a schedule minimizing the objective (lowest-lexicographic
        assignment among ties, matching MinWork's lowest-index rule)."""
        agents = list(range(bids.num_agents))
        best_schedule, best_cost = None, None
        for schedule in _enumerate_schedules(bids.num_tasks, agents,
                                             bids.num_agents):
            cost = self.objective(schedule, bids)
            if best_cost is None or cost < best_cost - 1e-12:
                best_schedule, best_cost = schedule, cost
        return best_schedule

    def _cost_excluding(self, schedule: Schedule, bids: Bids,
                        excluded: int) -> float:
        """Social cost counting every agent's declared cost except one's."""
        total = 0.0
        for task in range(bids.num_tasks):
            agent = schedule.agent_of(task)
            if agent != excluded:
                total += bids.time(agent, task)
        return total

    def payments(self, bids: Bids, schedule: Schedule) -> List[float]:
        """Clarke pivot payments against the declared-cost economy.

        Only supported for the separable total-work objective family, where
        "cost excluding i" is well defined as the sum of others' declared
        times; the makespan objective does not decompose this way and is
        served by :meth:`pivot_payments_for_makespan` in tests if needed.
        """
        if bids.num_agents < 2:
            raise ValueError("VCG payments need at least two agents")
        results = []
        others_universe = list(range(bids.num_agents))
        for agent in range(bids.num_agents):
            remaining = [a for a in others_universe if a != agent]
            best_without, cost_without = None, None
            for candidate in _enumerate_schedules(bids.num_tasks, remaining,
                                                  bids.num_agents):
                cost = self._cost_excluding(candidate, bids, agent)
                if cost_without is None or cost < cost_without - 1e-12:
                    best_without, cost_without = candidate, cost
            results.append(cost_without - self._cost_excluding(schedule, bids,
                                                               agent))
        return results
