"""Executable mechanism-property checkers (Definitions 3 and 4).

Truthfulness and voluntary participation are universally quantified
statements; the checkers here falsify them over either an exhaustive
discrete grid of unilateral deviations or a random sample.  A ``None``
return means "no counterexample found"; otherwise a :class:`Violation`
pinpoints the profitable deviation.

These drive experiment E4 (Theorem 2) and double as regression tests: a
buggy payment rule (e.g. first-price payments) is caught immediately — see
``tests/test_properties.py``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..scheduling.problem import SchedulingProblem
from .base import CentralizedMechanism, truthful_bids, unilateral_deviation


@dataclass(frozen=True)
class Violation:
    """A counterexample to truthfulness or voluntary participation.

    Attributes
    ----------
    agent:
        The deviating (or losing) agent.
    deviation:
        The bid row that beat truth-telling (``None`` for participation
        violations).
    truthful_utility, deviating_utility:
        The utilities demonstrating the violation.
    """

    agent: int
    deviation: Optional[tuple]
    truthful_utility: float
    deviating_utility: float


def check_truthfulness_exhaustive(mechanism: CentralizedMechanism,
                                  problem: SchedulingProblem,
                                  bid_values: Sequence[float]
                                  ) -> Optional[Violation]:
    """Search every per-agent bid row over a discrete value grid.

    For each agent, every row in ``bid_values ** num_tasks`` is tried
    against the others' truthful reports.  Exponential in ``m`` — intended
    for small instances where the check is then *complete* over the grid.
    """
    truthful = truthful_bids(problem)
    baseline = mechanism.run(truthful)
    for agent in range(problem.num_agents):
        truthful_utility = baseline.utility(agent, problem)
        for row in itertools.product(bid_values, repeat=problem.num_tasks):
            if list(row) == list(problem.agent_times(agent)):
                continue
            deviating = mechanism.run(unilateral_deviation(truthful, agent,
                                                           row))
            utility = deviating.utility(agent, problem)
            if utility > truthful_utility + 1e-9:
                return Violation(agent=agent, deviation=row,
                                 truthful_utility=truthful_utility,
                                 deviating_utility=utility)
    return None


def check_truthfulness_sampled(mechanism: CentralizedMechanism,
                               problem: SchedulingProblem,
                               rng: random.Random,
                               samples: int = 200,
                               low: float = 0.5,
                               high: float = 150.0) -> Optional[Violation]:
    """Randomized truthfulness check: random agents, random deviation rows.

    Deviations mix fresh uniform values with perturbations of the truth
    (over- and under-bidding near the true value is where second-price
    violations hide).
    """
    truthful = truthful_bids(problem)
    baseline = mechanism.run(truthful)
    for _ in range(samples):
        agent = rng.randrange(problem.num_agents)
        true_row = problem.agent_times(agent)
        if rng.random() < 0.5:
            row = [rng.uniform(low, high) for _ in range(problem.num_tasks)]
        else:
            row = [max(1e-9, value * rng.uniform(0.3, 3.0))
                   for value in true_row]
        deviating = mechanism.run(unilateral_deviation(truthful, agent, row))
        utility = deviating.utility(agent, problem)
        truthful_utility = baseline.utility(agent, problem)
        if utility > truthful_utility + 1e-9:
            return Violation(agent=agent, deviation=tuple(row),
                             truthful_utility=truthful_utility,
                             deviating_utility=utility)
    return None


def check_voluntary_participation(mechanism: CentralizedMechanism,
                                  problem: SchedulingProblem
                                  ) -> Optional[Violation]:
    """Check Definition 4: truthful agents never end with negative utility."""
    result = mechanism.run(truthful_bids(problem))
    for agent in range(problem.num_agents):
        utility = result.utility(agent, problem)
        if utility < -1e-9:
            return Violation(agent=agent, deviation=None,
                             truthful_utility=utility,
                             deviating_utility=utility)
    return None
