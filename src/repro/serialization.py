"""JSON serialization of instances, schedules, and outcomes.

A downstream user of the library needs to persist and exchange three
kinds of artifacts: problem instances (to rerun experiments), schedules
and payments (the outcome a market actually executes), and full outcome
records including transcripts and cost metrics (for audits and reports).
This module provides stable, versioned JSON encodings for all of them.

Cryptographic material (polynomials, shares, commitments) is deliberately
*not* serializable: persisting secret shares would break the privacy
model, and public commitments are only meaningful inside a live protocol
run (the auditor consumes them in-process via
:func:`repro.core.audit.audit_protocol_run`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .core.checkpoint import ProtocolCheckpoint
from .core.outcome import AuctionTranscript, DMWOutcome
from .core.trace import ProtocolTrace
from .crypto.secret import secret_json_default
from .network.metrics import NetworkMetrics
from .scheduling.problem import SchedulingProblem, Task
from .scheduling.schedule import PartialSchedule, Schedule

#: Bumped whenever an encoding changes shape.  Version 2 adds the optional
#: ``trace`` (structured event log) and ``cache_stats`` outcome fields;
#: version-1 documents remain loadable (the new keys default to empty).
#: Version 3 adds the ``dmw_checkpoint`` document type, partial schedules
#: (``null`` assignment entries for quarantined tasks), and the optional
#: ``degraded``/``task_aborts`` outcome fields; version-1/2 documents
#: remain loadable (the new keys default to empty/False).
#: Version 4 adds the checkpoint's completed-auction frontier
#: (``completed_tasks``) and public-value cache snapshot (``cache_state``)
#: plus the optional ``parallelism`` outcome section (process-pool driver
#: metadata); version-3 documents remain loadable (the frontier defaults
#: to the ``next_task`` prefix, the cache snapshot to empty).
FORMAT_VERSION = 4

#: Document versions :func:`loads` accepts.
SUPPORTED_VERSIONS = (1, 2, 3, 4)

#: First format version that can carry each v3-only document type.
_CHECKPOINT_MIN_VERSION = 3


class SerializationError(ValueError):
    """Raised on malformed or wrong-version documents."""


def _check(document: Dict[str, Any], expected_type: str) -> None:
    if not isinstance(document, dict):
        raise SerializationError("expected a JSON object")
    if document.get("type") != expected_type:
        raise SerializationError(
            "expected type %r, got %r" % (expected_type,
                                          document.get("type"))
        )
    if document.get("version") not in SUPPORTED_VERSIONS:
        raise SerializationError(
            "unsupported format version %r" % document.get("version")
        )


# -- problems -----------------------------------------------------------------

def problem_to_dict(problem: SchedulingProblem) -> Dict[str, Any]:
    """Encode an instance (time matrix + task requirements)."""
    return {
        "type": "scheduling_problem",
        "version": FORMAT_VERSION,
        "times": [list(row) for row in problem.times],
        "requirements": [task.processing_requirement
                         for task in problem.tasks],
    }


def problem_from_dict(document: Dict[str, Any]) -> SchedulingProblem:
    """Decode an instance encoded by :func:`problem_to_dict`."""
    _check(document, "scheduling_problem")
    tasks = [Task(index=j, processing_requirement=r)
             for j, r in enumerate(document["requirements"])]
    return SchedulingProblem(document["times"], tasks)


# -- schedules -----------------------------------------------------------------

def schedule_to_dict(schedule) -> Dict[str, Any]:
    """Encode a schedule as its assignment vector.

    Accepts both :class:`~repro.scheduling.schedule.Schedule` and
    :class:`~repro.scheduling.schedule.PartialSchedule`; a partial
    schedule's quarantined tasks appear as ``null`` entries.
    """
    return {
        "type": "schedule",
        "version": FORMAT_VERSION,
        "assignment": list(schedule.assignment),
        "num_agents": schedule.num_agents,
    }


def schedule_from_dict(document: Dict[str, Any]):
    """Decode a schedule; ``null`` entries yield a ``PartialSchedule``."""
    _check(document, "schedule")
    assignment = document["assignment"]
    if any(entry is None for entry in assignment):
        return PartialSchedule(assignment, document["num_agents"])
    return Schedule(assignment, document["num_agents"])


# -- outcomes -------------------------------------------------------------------

def _transcript_to_dict(transcript: AuctionTranscript) -> Dict[str, Any]:
    return {
        "task": transcript.task,
        "first_price": transcript.first_price,
        "winner": transcript.winner,
        "second_price": transcript.second_price,
        "valid_aggregate_publishers":
            list(transcript.valid_aggregate_publishers),
        "valid_disclosers": list(transcript.valid_disclosers),
    }


def _transcript_from_dict(document: Dict[str, Any]) -> AuctionTranscript:
    return AuctionTranscript(
        task=document["task"],
        first_price=document["first_price"],
        winner=document["winner"],
        second_price=document["second_price"],
        valid_aggregate_publishers=tuple(
            document["valid_aggregate_publishers"]),
        valid_disclosers=tuple(document["valid_disclosers"]),
    )


def outcome_to_dict(outcome: DMWOutcome,
                    trace: Optional[ProtocolTrace] = None) -> Dict[str, Any]:
    """Encode an outcome: result, transcripts, and cost metrics.

    Abort details are flattened to strings (exception objects do not
    round-trip); metrics keep their full per-kind breakdown.  When a
    :class:`~repro.core.trace.ProtocolTrace` is supplied, its structured
    event log is embedded (``trace`` key) and survives the round trip —
    recover it with :func:`trace_from_dict`.
    """
    return {
        "type": "dmw_outcome",
        "version": FORMAT_VERSION,
        "completed": outcome.completed,
        "schedule": (schedule_to_dict(outcome.schedule)
                     if outcome.schedule is not None else None),
        "payments": (list(outcome.payments)
                     if outcome.payments is not None else None),
        "transcripts": [_transcript_to_dict(t) for t in outcome.transcripts],
        "abort": (_abort_to_dict(outcome.abort)
                  if outcome.abort is not None else None),
        "network_metrics": outcome.network_metrics.as_dict(),
        "agent_operations": list(outcome.agent_operations),
        "cache_stats": dict(outcome.cache_stats),
        "degraded": outcome.degraded,
        "task_aborts": {str(task): _abort_to_dict(abort)
                        for task, abort in sorted(
                            outcome.task_aborts.items())},
        "parallelism": dict(outcome.parallelism),
        "trace": trace.to_list() if trace is not None else None,
    }


def _abort_to_dict(abort) -> Dict[str, Any]:
    return {
        "reason": abort.reason,
        "phase": abort.phase,
        "task": abort.task,
        "detected_by": abort.detected_by,
        "offender": abort.offender,
    }


def _abort_from_dict(raw: Dict[str, Any]):
    from .core.exceptions import ProtocolAbort
    return ProtocolAbort(reason=raw["reason"], phase=raw["phase"],
                         task=raw["task"], detected_by=raw["detected_by"],
                         offender=raw["offender"])


def outcome_from_dict(document: Dict[str, Any]) -> DMWOutcome:
    """Decode an outcome.

    The network metrics are restored as totals (per-kind counts included);
    an abort record is restored as a plain
    :class:`~repro.core.exceptions.ProtocolAbort`.
    """
    _check(document, "dmw_outcome")
    metrics = metrics_from_dict(document["network_metrics"])

    abort = None
    if document["abort"] is not None:
        abort = _abort_from_dict(document["abort"])

    return DMWOutcome(
        completed=document["completed"],
        schedule=(schedule_from_dict(document["schedule"])
                  if document["schedule"] is not None else None),
        payments=(tuple(document["payments"])
                  if document["payments"] is not None else None),
        transcripts=[_transcript_from_dict(t)
                     for t in document["transcripts"]],
        abort=abort,
        network_metrics=metrics,
        agent_operations=list(document["agent_operations"]),
        cache_stats=dict(document.get("cache_stats") or {}),
        degraded=bool(document.get("degraded", False)),
        task_aborts={int(task): _abort_from_dict(raw)
                     for task, raw in
                     (document.get("task_aborts") or {}).items()},
        parallelism=dict(document.get("parallelism") or {}),
    )


def metrics_from_dict(raw_metrics: Dict[str, Any]) -> NetworkMetrics:
    """Rebuild :class:`~repro.network.metrics.NetworkMetrics` from its
    :meth:`~repro.network.metrics.NetworkMetrics.as_dict` encoding."""
    metrics = NetworkMetrics()
    metrics.point_to_point_messages = raw_metrics["point_to_point_messages"]
    metrics.broadcast_events = raw_metrics["broadcast_events"]
    metrics.field_elements = raw_metrics["field_elements"]
    metrics.rounds = raw_metrics["rounds"]
    metrics.retransmissions = raw_metrics.get("retransmissions", 0)
    metrics.recovered_messages = raw_metrics.get("recovered_messages", 0)
    for key, value in raw_metrics.items():
        if key.startswith("messages[") and key.endswith("]"):
            metrics.by_kind[key[len("messages["):-1]] = value
    return metrics


def trace_from_dict(document: Dict[str, Any]) -> Optional[ProtocolTrace]:
    """Recover the embedded event trace from an outcome document.

    Returns ``None`` when the document was written without a trace
    (including every version-1 document).
    """
    _check(document, "dmw_outcome")
    events = document.get("trace")
    if events is None:
        return None
    return ProtocolTrace.from_list(events)


# -- checkpoints ----------------------------------------------------------------

def checkpoint_to_dict(checkpoint: ProtocolCheckpoint) -> Dict[str, Any]:
    """Encode a :class:`~repro.core.checkpoint.ProtocolCheckpoint`.

    Format version 3+ only (version 4 adds the completed-auction
    frontier and the cache snapshot).  The rng states are the JSON
    encodings produced by :func:`repro.core.checkpoint.encode_rng_state`;
    no cryptographic secret appears in the document — the cache snapshot
    holds only bulletin-board-derivable public values (see the module
    docstring of :mod:`repro.core.checkpoint`).
    """
    return {
        "type": "dmw_checkpoint",
        "version": FORMAT_VERSION,
        "num_tasks": checkpoint.num_tasks,
        "next_task": checkpoint.next_task,
        "degraded": checkpoint.degraded,
        "num_agents": checkpoint.num_agents,
        "transcripts": [_transcript_to_dict(t)
                        for t in checkpoint.transcripts],
        "task_aborts": {str(task): _abort_to_dict(abort)
                        for task, abort in sorted(
                            checkpoint.task_aborts.items())},
        "agent_rng_states": [list(state)
                             for state in checkpoint.agent_rng_states],
        "agent_operations": list(checkpoint.agent_operations),
        "network_metrics": dict(checkpoint.network_metrics),
        "round_index": checkpoint.round_index,
        "timeout_state": dict(checkpoint.timeout_state),
        "completed_tasks": (list(checkpoint.completed_tasks)
                            if checkpoint.completed_tasks is not None
                            else None),
        "cache_state": dict(checkpoint.cache_state),
    }


def checkpoint_from_dict(document: Dict[str, Any]) -> ProtocolCheckpoint:
    """Decode a checkpoint document written by :func:`checkpoint_to_dict`."""
    _check(document, "dmw_checkpoint")
    if document["version"] < _CHECKPOINT_MIN_VERSION:
        raise SerializationError(
            "dmw_checkpoint requires format version >= %d, got %r"
            % (_CHECKPOINT_MIN_VERSION, document["version"])
        )
    return ProtocolCheckpoint(
        num_tasks=document["num_tasks"],
        next_task=document["next_task"],
        degraded=bool(document["degraded"]),
        num_agents=document["num_agents"],
        transcripts=[_transcript_from_dict(t)
                     for t in document["transcripts"]],
        task_aborts={int(task): _abort_from_dict(raw)
                     for task, raw in document["task_aborts"].items()},
        agent_rng_states=[list(state)
                          for state in document["agent_rng_states"]],
        agent_operations=list(document["agent_operations"]),
        network_metrics=dict(document["network_metrics"]),
        round_index=document["round_index"],
        timeout_state=dict(document.get("timeout_state") or {}),
        # Version-3 documents predate the explicit frontier; None keeps
        # ProtocolCheckpoint.completed_set() on its prefix fallback.
        completed_tasks=(list(document["completed_tasks"])
                         if document.get("completed_tasks") is not None
                         else None),
        cache_state=dict(document.get("cache_state") or {}),
    )


def save_checkpoint(checkpoint: ProtocolCheckpoint, path: str) -> None:
    """Write a checkpoint document to ``path`` (atomic via temp+rename,
    so a crash mid-write never corrupts the previous checkpoint)."""
    import os
    text = json.dumps(checkpoint_to_dict(checkpoint), indent=2,
                      sort_keys=True, default=secret_json_default)
    temp_path = path + ".tmp"
    with open(temp_path, "w") as handle:
        handle.write(text + "\n")
    os.replace(temp_path, path)


def load_checkpoint(path: str) -> ProtocolCheckpoint:
    """Load a checkpoint document written by :func:`save_checkpoint`."""
    with open(path) as handle:
        document = json.loads(handle.read())
    return checkpoint_from_dict(document)


# -- file helpers -----------------------------------------------------------------

_ENCODERS = {
    SchedulingProblem: problem_to_dict,
    Schedule: schedule_to_dict,
    PartialSchedule: schedule_to_dict,
    DMWOutcome: outcome_to_dict,
    ProtocolCheckpoint: checkpoint_to_dict,
}

_DECODERS = {
    "scheduling_problem": problem_from_dict,
    "schedule": schedule_from_dict,
    "dmw_outcome": outcome_from_dict,
    "dmw_checkpoint": checkpoint_from_dict,
}


def dumps(artifact, trace: Optional[ProtocolTrace] = None) -> str:
    """Serialize any supported artifact to a JSON string.

    ``trace`` embeds an event log into outcome documents; passing it with
    any other artifact type is an error.
    """
    if trace is not None and not isinstance(artifact, DMWOutcome):
        raise SerializationError(
            "trace embedding is only supported for DMWOutcome artifacts")
    for kind, encoder in _ENCODERS.items():
        if isinstance(artifact, kind):
            if isinstance(artifact, DMWOutcome):
                document = outcome_to_dict(artifact, trace=trace)
            else:
                document = encoder(artifact)
            # default=secret_json_default turns an accidental Secret in a
            # document into SecretLeakError instead of a bare TypeError.
            return json.dumps(document, indent=2, sort_keys=True,
                              default=secret_json_default)
    raise SerializationError("cannot serialize %r" % type(artifact).__name__)


def loads(text: str):
    """Deserialize a JSON string produced by :func:`dumps`."""
    document = json.loads(text)
    if not isinstance(document, dict) or "type" not in document:
        raise SerializationError("not a repro document")
    decoder = _DECODERS.get(document["type"])
    if decoder is None:
        raise SerializationError("unknown document type %r"
                                 % document["type"])
    return decoder(document)


def save(artifact, path: str,
         trace: Optional[ProtocolTrace] = None) -> None:
    """Serialize ``artifact`` to a file (``trace`` as for :func:`dumps`)."""
    with open(path, "w") as handle:
        handle.write(dumps(artifact, trace=trace) + "\n")


def load(path: str):
    """Load an artifact serialized by :func:`save`."""
    with open(path) as handle:
        return loads(handle.read())


def load_trace(path: str) -> Optional[ProtocolTrace]:
    """Load the embedded trace of a saved outcome (``None`` when absent)."""
    with open(path) as handle:
        document = json.loads(handle.read())
    return trace_from_dict(document)
