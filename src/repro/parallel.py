"""Process-pool execution engine: the ``m`` auctions across N OS processes.

The paper's auctions are "parallel and independent" — nothing computed in
task ``j``'s auction feeds task ``k``'s.  The in-process phase-barrier
driver (``DMWProtocol.execute(parallel=True)``) exploits that to compress
*rounds* (``4m + 1`` down to 5) but still serialises all computation on
one core.  This module adds the missing axis: ``execute(parallel=True,
workers=N)`` shards the per-task auctions across ``N`` worker *processes*
and deterministically merges the results back into the parent protocol,
bit-identical to the sequential driver.

Determinism contract (``docs/PERFORMANCE.md``)
----------------------------------------------
* **Private randomness** is drawn from per-``(agent, task)`` substreams:
  :meth:`~repro.core.agent.DMWAgent.task_rng` hashes the agent's
  ``rng_root`` (itself derived from the run seed at construction) with
  the task index, so the polynomial coefficients for a given task are a
  pure function of ``(seed, task)`` — independent of execution order,
  interleaving, and process boundaries.  Every driver uses the same
  substreams, so outcomes, transcripts, and per-agent
  :class:`~repro.crypto.modular.OperationCounter` totals are identical
  across drivers by construction.
* **Work units** are picklable: a worker receives only the task index;
  the shared :class:`PoolSpec` (parameters, true values, rng roots) is
  installed once per worker process via the pool initializer.  Nothing
  secret crosses the process boundary that the agents would not have
  derived themselves; shard *results* carry only public data (the
  transcript, accounting totals, trace/span exports).
* **Dispatch is batched and the merge is ordered**: tasks are submitted
  in deterministic batches of ``workers`` and merged strictly in task
  order, so the frontier only ever grows as a prefix of the remaining
  tasks, the merged trace replays in the sequential driver's order, and
  a strict-mode abort voids the run with exactly the accounting the
  sequential driver would have accumulated (completed tasks before the
  aborting one, plus the aborting auction's partial work — shards after
  the lowest aborting task are discarded unmerged).

Merge semantics
---------------
Each shard runs the full auction for one task on a fresh network with
fresh zeroed counters and a fresh per-task
:class:`~repro.crypto.fastexp.PublicValueCache`.  The parent folds, per
shard and in task order:

* per-agent operation counters (additive) and verification tallies;
* :class:`~repro.network.metrics.NetworkMetrics` totals and the round
  index (per-task rounds sum back to the sequential ``4m`` total);
* the public transcript, including the winner/price fields the payments
  phase reads from each parent agent's task state;
* cache statistics (per-task sums — see the note below);
* trace events (replayed through the parent trace) and observability
  spans (grafted under the open ``run`` span with renumbered ids and
  rebased timestamps, so the phase-partition invariant of
  ``validate_run_report`` holds exactly on the merged report).

The one documented accounting difference vs. the sequential driver is
``cache_stats``: the sequential driver shares one cache across all ``m``
auctions (cross-task Lagrange-weight hits), while the pool driver's
shards use per-task caches.  The merged statistics are the deterministic
per-task sums — identical for every ``workers`` count ≥ 1 (pinned by
``tests/test_process_pool.py``) — but not equal to the shared-cache
numbers.  Counters are unaffected either way: the analytic schedule is
charged on cache hits too (``docs/PERFORMANCE.md``).

Checkpointing
-------------
With ``checkpoint_path`` the parent writes a *completed-auction frontier*
checkpoint after every merged task, carrying the cumulative merged cache
statistics; a killed run resumes (``resume=...``) by re-running exactly
the tasks outside the frontier and produces an outcome identical to the
uninterrupted run, ``cache_stats`` included (``docs/RESILIENCE.md``).

Scope: the pool driver covers the fault-free fast path — plain
:class:`~repro.core.agent.DMWAgent` strategies over an obedient
:class:`~repro.network.simulator.SynchronousNetwork`.  Deviation studies,
fault injection, and latency/timeout models use the in-process drivers,
which simulate those adversarial schedules faithfully; the engine rejects
unsupported configurations with :class:`~repro.core.exceptions.ParameterError`
rather than silently dropping the fault plan.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from .core.agent import DMWAgent
from .core.exceptions import ParameterError, ProtocolAbort
from .crypto import backend as crypto_backend
from .core.outcome import AuctionTranscript
from .core.trace import NullTrace, ProtocolTrace
from .crypto.fastexp import PublicValueCache, merge_cache_stats
from .crypto.modular import OperationCounter
from .network.simulator import SynchronousNetwork
from .obs.flight import DEFAULT_CAPACITY, FlightRecorder
from .obs.profile import PhaseProfiler
from .obs.spans import Span, SpanEvent, SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core.protocol import DMWProtocol

#: Test hook invoked after each shard merge (and checkpoint write) with
#: the just-merged :class:`ShardResult`; ``tests/test_process_pool.py``
#: raises from it to simulate a crash between frontier checkpoints.
_POST_MERGE_HOOK: Optional[Callable[["ShardResult"], None]] = None


@dataclass(frozen=True)
class PoolSpec:
    """Everything a worker process needs to rebuild the execution context.

    Installed once per worker via the pool initializer; deliberately tiny
    and picklable (parameters are a few hundred bytes).  ``rng_roots``
    are the parent agents' substream roots, so worker-side agents derive
    exactly the parent's per-task randomness.
    """

    parameters: Any
    true_values: Tuple[Tuple[int, ...], ...]
    rng_roots: Tuple[int, ...]
    degraded: bool
    observe: bool
    trace_enabled: bool
    #: Flight recording: when on, each shard captures its auction's
    #: message events and ships them back for the parent to ingest.
    flight: bool = False
    flight_capacity: int = DEFAULT_CAPACITY
    #: Phase profiling: when on, each shard profiles its phase spans and
    #: ships the per-phase aggregate for additive merging.
    profile: bool = False
    #: Arithmetic engine selected in the parent (``"python"``/``"gmpy2"``);
    #: carried by *name* so the worker re-selects it after unpickling.
    #: Non-strict selection: a worker that cannot import the engine falls
    #: back to pure python and still produces the identical outcome
    #: (backends never change counted or computed values).
    backend: str = "python"
    #: Warm-cache snapshot (entries-only :meth:`PublicValueCache
    #: .export_state`, no ``stats`` section) used to pre-seed each
    #: shard's per-task cache.  Outcomes and counters are unaffected —
    #: call sites charge the analytic schedule on hits — so the merged
    #: results stay bit-identical to a cold run; only the merged
    #: ``cache_stats`` shift, exactly as for the sequential warm path.
    cache_state: Optional[Dict[str, Any]] = None


@dataclass
class ShardResult:
    """One task's auction, fully accounted, as returned by a worker."""

    task: int
    abort: Optional[ProtocolAbort]
    transcript: Optional[AuctionTranscript]
    agent_operations: List[Dict[str, int]] = field(default_factory=list)
    check_stats: List[List[Tuple[Tuple[str, bool], int]]] = \
        field(default_factory=list)
    network_totals: Dict[str, int] = field(default_factory=dict)
    round_index: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    trace_events: List[Dict[str, Any]] = field(default_factory=list)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    span_events: List[Dict[str, Any]] = field(default_factory=list)
    flight_events: List[Dict[str, Any]] = field(default_factory=list)
    flight_summary: Dict[str, Any] = field(default_factory=dict)
    profile: Dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_SPEC: Optional[PoolSpec] = None


def _init_worker(spec: PoolSpec) -> None:
    """Pool initializer: stash the shared spec in the worker process.

    Also re-selects the parent's arithmetic backend by name — module
    globals do not survive the process boundary, so the engine choice
    must be re-established in every worker.
    """
    global _SPEC
    _SPEC = spec
    crypto_backend.select_backend(spec.backend)


def _run_shard_with_spec(work: Tuple[PoolSpec, int]) -> ShardResult:
    """Shard entry point for a *resident* executor shared across jobs.

    A long-lived daemon cannot rely on the pool initializer: the same
    worker processes serve many jobs with different specs (and possibly
    different arithmetic backends), so each unit of work carries its
    job's spec and the worker re-installs it — backend selection
    included — whenever it differs from the one already installed.
    ``PoolSpec`` is a frozen dataclass, so the equality check compares
    by value across the pickle boundary.
    """
    spec, task = work
    if _SPEC != spec:
        _init_worker(spec)
    return _run_shard(task)


def _run_shard(task: int) -> ShardResult:
    """Run one task's full auction in this worker and account it.

    Builds a fresh, self-contained execution context — agents seeded
    with the parent's substream roots, an obedient synchronous network,
    a per-task public-value cache — and runs the same
    ``DMWProtocol._run_auction`` code path the sequential driver uses,
    so the shard's counters, messages, rounds, spans, and trace are
    exactly what the sequential driver would have recorded for this
    task.
    """
    spec = _SPEC
    if spec is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker used before _init_worker installed a spec")
    # Local import: repro.core.protocol imports this module lazily, so the
    # reverse import must happen at call time to stay cycle-free.
    from .core.protocol import DMWProtocol

    agents = []
    for index in range(spec.parameters.num_agents):
        agent = DMWAgent(index, spec.parameters,
                         list(spec.true_values[index]),
                         rng=random.Random(0))
        # Adopt the parent's substream root: task_rng(task) now yields the
        # exact coefficients the parent's agent would have drawn.
        agent.rng_root = spec.rng_roots[index]
        agents.append(agent)
    trace = ProtocolTrace() if spec.trace_enabled else None
    recorder = SpanRecorder() if spec.observe else None
    if recorder is not None and spec.profile:
        recorder.profiler = PhaseProfiler()
    flight = (FlightRecorder(capacity=spec.flight_capacity)
              if spec.flight else None)
    protocol = DMWProtocol(spec.parameters, agents, trace=trace,
                           observer=recorder, flight=flight)
    cache = PublicValueCache()
    if spec.cache_state:
        # Warm shard: import a previous same-group job's public entries
        # (entries only — the snapshot carries no stats section, so this
        # shard's hit/miss counters describe only its own lookups).
        cache.import_state(spec.cache_state)
    for agent in agents:
        agent.adopt_cache(cache)
    protocol._shared_cache = cache
    protocol._degraded = spec.degraded
    if recorder is not None:
        recorder.bind(protocol._summed_operations,
                      protocol.network.metrics.as_dict)

    abort = protocol._run_auction(task)

    transcript = None
    if abort is None:
        transcript = protocol._transcripts[-1]
    return ShardResult(
        task=task,
        abort=abort,
        transcript=transcript,
        agent_operations=[agent.counter.snapshot() for agent in agents],
        check_stats=[list(agent.check_stats.items()) for agent in agents],
        network_totals=protocol.network.metrics.as_dict(),
        round_index=protocol.network.round_index,
        cache_stats=cache.stats(),
        trace_events=(trace.to_list() if trace is not None else []),
        spans=([span.to_dict() for span in recorder.spans]
               if recorder is not None else []),
        span_events=([event.to_dict() for event in recorder.events]
                     if recorder is not None else []),
        flight_events=(flight.to_list() if flight is not None else []),
        flight_summary=(flight.summary() if flight is not None else {}),
        profile=(recorder.profiler.export()
                 if recorder is not None and recorder.profiler is not None
                 else {}),
    )


# ---------------------------------------------------------------------------
# Parent side: validation, merge, drive
# ---------------------------------------------------------------------------

def _plan_is_obedient(plan: Any) -> bool:
    """True iff the fault plan injects nothing (Theorem 3's network)."""
    return (not plan.crashed_from_round and not plan.dropped_links
            and not plan.drop_probability and not plan.corruptors)


def _validate_poolable(protocol: "DMWProtocol") -> None:
    """Reject configurations the process-pool driver cannot shard.

    The shards rebuild the execution context inside worker processes;
    anything that cannot be reconstructed faithfully there — deviating
    agent strategies, injected faults, timeout/latency network models,
    delivery recording — must use the in-process drivers instead.
    """
    for agent in protocol.agents:
        if type(agent) is not DMWAgent:
            raise ParameterError(
                "process-pool driver requires plain DMWAgent strategies; "
                "agent %d is %s (use the sequential or phase-barrier "
                "driver for deviation studies)"
                % (agent.index, type(agent).__name__))
    network = protocol.network
    if type(network) is not SynchronousNetwork:
        raise ParameterError(
            "process-pool driver requires the plain SynchronousNetwork; "
            "got %s (timeout/latency models are in-process only)"
            % type(network).__name__)
    if not _plan_is_obedient(network.fault_plan):
        raise ParameterError(
            "process-pool driver requires an obedient fault plan; "
            "fault injection studies use the in-process drivers")
    if network.record_deliveries:
        raise ParameterError(
            "process-pool driver does not reconstruct per-copy delivery "
            "logs; disable record_deliveries")


def _metrics_from_totals_dict(totals: Dict[str, int]) -> Any:
    from .core.checkpoint import _metrics_from_totals
    return _metrics_from_totals(totals)


def _graft_spans(recorder: SpanRecorder, result: ShardResult
                 ) -> Optional[Tuple[int, float]]:
    """Splice a shard's spans/events under the parent's open run span.

    Ids are renumbered into the parent's id space, shard roots are
    re-parented under the currently open span, and timestamps are
    rebased so every grafted span ends at (or before) the merge instant
    — preserving both id uniqueness and the ``end >= start`` schema rule
    while keeping the per-span operation/network deltas untouched, which
    is all the phase-partition invariant reads.

    Returns the ``(id_base, time_offset)`` applied, so the flight-event
    ingest can remap its owning span ids and timestamps by exactly the
    same shift; ``None`` when nothing was grafted.
    """
    if not recorder.enabled or not result.spans:
        return None
    base = recorder._next_id
    parent_id = recorder._stack[-1] if recorder._stack else None
    now = recorder.clock() - recorder.epoch
    max_end = max(span["end_s"] for span in result.spans)
    offset = now - max_end
    highest = 0
    for document in result.spans:
        span = Span.from_dict(document)
        highest = max(highest, span.span_id)
        span.span_id = base + span.span_id
        span.parent_id = (base + span.parent_id
                          if span.parent_id is not None else parent_id)
        span.start += offset
        span.end += offset
        recorder.spans.append(span)
    for document in result.span_events:
        recorder.events.append(SpanEvent(
            timestamp=document["timestamp_s"] + offset,
            span_id=(base + document["span_id"]
                     if document["span_id"] is not None else parent_id),
            name=document["name"],
            attributes=dict(document.get("attributes") or {}),
        ))
    recorder._next_id = base + highest + 1
    return base, offset


def _merge_shard(protocol: "DMWProtocol", result: ShardResult) -> None:
    """Fold one shard's accounting into the parent protocol (additive).

    Mirrors :meth:`~repro.core.checkpoint.ProtocolCheckpoint.apply`:
    counters and network totals continue from the parent's state, the
    transcript's public results are installed into every parent agent's
    task state (what the payments phase reads), and trace/span exports
    are replayed/grafted.  Merging is additive and per-task, so the
    final state after merging all shards in task order equals the
    sequential driver's state exactly.
    """
    for agent, operations, tallies in zip(protocol.agents,
                                          result.agent_operations,
                                          result.check_stats):
        delta = OperationCounter()
        delta.restore(operations)
        agent.counter.merge(delta)
        agent.check_stats.merge(tallies)
    protocol.network.metrics.merge(
        _metrics_from_totals_dict(result.network_totals))
    protocol.network.round_index += result.round_index
    if result.transcript is not None:
        transcript = result.transcript
        for agent in protocol.agents:
            state = agent.task_state(transcript.task)
            state.first_price = transcript.first_price
            state.winner = transcript.winner
            state.second_price = transcript.second_price
        protocol._transcripts.append(transcript)
    if protocol._cache_stats_override is not None:
        merge_cache_stats(protocol._cache_stats_override, result.cache_stats)
    for event in result.trace_events:
        protocol.trace.record(event["kind"], task=event["task"],
                              **event["detail"])
    graft = _graft_spans(protocol.observer, result)
    _merge_flight(protocol, result, graft)
    if result.profile:
        profiler = getattr(protocol.observer, "profiler", None)
        if profiler is not None:
            profiler.merge(result.profile)


def _merge_flight(protocol: "DMWProtocol", result: ShardResult,
                  graft: Optional[Tuple[int, float]]) -> None:
    """Ingest a shard's flight events with the shard's span-graft shift.

    Span ids and timestamps are remapped by exactly the ``(base,
    offset)`` the span graft applied, so a flight event keeps pointing at
    the same (now renumbered) owning span; without grafted spans the
    events are re-parented under the parent's open span and rebased to
    end at the merge instant.
    """
    flight = protocol.flight
    if not flight.enabled or not result.flight_events:
        return
    observer = protocol.observer
    parent_span = (observer._stack[-1]
                   if observer.enabled and observer._stack else None)
    if graft is not None:
        base, offset = graft
    else:
        base = None
        if observer.enabled:
            now = observer.clock() - observer.epoch
        else:
            now = flight.clock() - flight.epoch
        offset = now - max(document["timestamp_s"]
                           for document in result.flight_events)
    flight.ingest(result.flight_events, span_base=base,
                  span_parent=parent_span, time_offset=offset,
                  source_summary=result.flight_summary or None)


def _batches(items: List[int], size: int) -> List[List[int]]:
    return [items[start:start + size]
            for start in range(0, len(items), size)]


def run_pool_auctions(protocol: "DMWProtocol", num_tasks: int, workers: int,
                      checkpoint_path: Optional[str],
                      pool: Optional[ProcessPoolExecutor] = None,
                      warm_cache: Optional[PublicValueCache] = None
                      ) -> Optional[ProtocolAbort]:
    """Drive the remaining auctions through a process pool and merge.

    Called by :meth:`~repro.core.protocol.DMWProtocol.execute` inside the
    open ``run`` span, after any ``resume`` checkpoint has been applied.
    Returns the abort that voids the run (strict mode), or ``None``.

    Parameters
    ----------
    pool:
        A resident executor to reuse across jobs (the always-on
        service); each unit of work then carries the job's spec and is
        re-installed worker-side by :func:`_run_shard_with_spec`.  When
        omitted, a per-call executor with the classic initializer path
        is created and torn down here.
    warm_cache:
        Cache whose entries pre-seed every shard's per-task cache (see
        :attr:`PoolSpec.cache_state`).
    """
    _validate_poolable(protocol)
    done = {t.task for t in protocol._transcripts}
    done.update(protocol._task_aborts)
    remaining = [task for task in range(num_tasks) if task not in done]
    cache_state: Optional[Dict[str, Any]] = None
    if warm_cache is not None and warm_cache.entry_count():
        cache_state = warm_cache.export_state()
        # Entries only: each shard's stats must describe its own lookups.
        cache_state.pop("stats", None)
    spec = PoolSpec(
        parameters=protocol.parameters,
        true_values=tuple(tuple(agent.true_values)
                          for agent in protocol.agents),
        rng_roots=tuple(agent.rng_root for agent in protocol.agents),
        degraded=protocol._degraded,
        observe=protocol.observer.enabled,
        trace_enabled=not isinstance(protocol.trace, NullTrace),
        flight=protocol.flight.enabled,
        flight_capacity=protocol.flight.capacity,
        profile=(protocol.observer.enabled
                 and getattr(protocol.observer, "profiler", None)
                 is not None),
        backend=crypto_backend.ACTIVE.name,
        cache_state=cache_state,
    )
    batch_count = 0
    if not remaining:
        return None
    if pool is not None:
        return _drive_pool(protocol, pool, spec, remaining, num_tasks,
                           workers, checkpoint_path, resident=True)
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_init_worker,
                             initargs=(spec,)) as owned_pool:
        return _drive_pool(protocol, owned_pool, spec, remaining, num_tasks,
                           workers, checkpoint_path, resident=False)


def _drive_pool(protocol: "DMWProtocol", pool: ProcessPoolExecutor,
                spec: PoolSpec, remaining: List[int], num_tasks: int,
                workers: int, checkpoint_path: Optional[str],
                resident: bool) -> Optional[ProtocolAbort]:
    """Submit batches, merge results in task order, checkpoint frontiers.

    ``resident`` pools (shared across a daemon's jobs) route through
    :func:`_run_shard_with_spec` so every shard carries and re-installs
    its job's spec; owned pools installed the spec once at fork via the
    initializer and submit the bare task index.
    """
    batch_count = 0
    for batch in _batches(remaining, workers):
        batch_count += 1
        if resident:
            futures = [pool.submit(_run_shard_with_spec, (spec, task))
                       for task in batch]
        else:
            futures = [pool.submit(_run_shard, task) for task in batch]
        # Deterministic ordered merge: results are consumed in task
        # order regardless of which worker finishes first.
        for future in futures:
            result = future.result()
            if result.abort is not None and not protocol._degraded:
                # Strict mode: merge the aborting auction's partial
                # accounting (the sequential driver charges it too),
                # discard everything after it, and void the run.
                _merge_shard(protocol, result)
                protocol._parallelism["batches"] = batch_count
                return result.abort
            _merge_shard(protocol, result)
            if result.abort is not None:
                protocol._quarantine(result.task, result.abort)
            if checkpoint_path is not None:
                protocol._write_checkpoint(checkpoint_path, num_tasks,
                                           result.task + 1)
            if _POST_MERGE_HOOK is not None:
                _POST_MERGE_HOOK(result)
    protocol._parallelism["batches"] = batch_count
    return None
