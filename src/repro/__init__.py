"""repro — Distributed Algorithmic Mechanism Design for Scheduling (DMW).

A from-scratch reproduction of Carroll & Grosu's *Distributed MinWork*
mechanism (PODC 2005 brief announcement; full version in JPDC 71, 2011):
a fully distributed, faithful implementation of Nisan-Ronen's truthful
MinWork scheduling mechanism, built on degree-encoded secret sharing,
Pedersen commitments, and distributed polynomial degree resolution.

Quick start::

    import random
    from repro import run_dmw, MinWork, truthful_bids
    from repro.scheduling import workloads

    problem = workloads.random_discrete(num_agents=5, num_tasks=3,
                                        bid_values=[1, 2, 3],
                                        rng=random.Random(7))
    outcome = run_dmw(problem)              # distributed, no trusted center
    result = MinWork().run(truthful_bids(problem))   # centralized baseline
    assert outcome.schedule == result.schedule
    assert list(outcome.payments) == list(result.payments)

Package layout: :mod:`repro.crypto` (primitives), :mod:`repro.scheduling`
(problem model), :mod:`repro.mechanisms` (centralized baselines),
:mod:`repro.network` (synchronous simulator), :mod:`repro.core` (DMW),
:mod:`repro.analysis` (experiment drivers).
"""

from . import serialization
from .core import (
    DMWAgent,
    DMWOutcome,
    DMWParameters,
    DMWProtocol,
    ProtocolAbort,
    audit_protocol_run,
    run_dmw,
)
from .mechanisms import MechanismResult, MinWork, truthful_bids
from .scheduling import PartialSchedule, Schedule, SchedulingProblem, Task

__version__ = "1.0.0"

__all__ = [
    "DMWAgent",
    "DMWOutcome",
    "DMWParameters",
    "DMWProtocol",
    "MechanismResult",
    "MinWork",
    "PartialSchedule",
    "ProtocolAbort",
    "Schedule",
    "SchedulingProblem",
    "Task",
    "audit_protocol_run",
    "run_dmw",
    "serialization",
    "truthful_bids",
    "__version__",
]
