"""One-command reproduction: regenerate every experiment's table.

``python -m repro reproduce`` runs compact versions of every experiment in
DESIGN.md's index (E1-E9 plus the X-extensions) and prints the same tables
the benchmark suite writes to ``benchmarks/results/`` — a self-contained
smoke-reproduction for a reader who wants the paper's story in one run.

The ``quick`` profile keeps everything under ~30 seconds; the ``full``
profile matches the benchmark suite's sweep sizes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from .analysis import (
    adversarial_ratios,
    exposure_by_coalition_size,
    faithfulness_violations,
    fit_loglog_slope,
    leakage_report,
    measure_dmw,
    measure_minwork,
    participation_violations,
    render_table,
    run_deviation_matrix,
    sweep_agents,
)
from .analysis.resilience import resilience_sweep
from .core import DMWParameters
from .core.protocol import run_dmw
from .mechanisms import MinWork, truthful_bids
from .scheduling import workloads

#: Sweep sizes per profile.
PROFILES = {
    "quick": {"agents": (4, 6, 8), "deviant_indices": (0,),
              "privacy_n": 5, "adversarial": (2, 3, 4)},
    "full": {"agents": (4, 6, 8, 10, 12), "deviant_indices": (0, 2, 4),
             "privacy_n": 6, "adversarial": (2, 3, 4, 5, 6)},
}


def _section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def reproduce_table1(profile: Dict) -> bool:
    _section("E1/E2 - Table 1: communication and computation scaling")
    agents = profile["agents"]
    rows = []
    ok = True
    for name, measure, msg_prediction, work_prediction in (
            ("minwork", measure_minwork, 1.0, 1.0),
            ("dmw", measure_dmw, 2.0, 2.0)):
        samples = sweep_agents(agents, num_tasks=2, measure=measure)
        msg_slope = fit_loglog_slope([s.num_agents for s in samples],
                                     [s.messages for s in samples])
        work_slope = fit_loglog_slope([s.num_agents for s in samples],
                                      [s.computation for s in samples])
        rows.append([name, msg_prediction, msg_slope, work_prediction,
                     work_slope])
        ok = ok and abs(msg_slope - msg_prediction) < 0.5 \
            and abs(work_slope - work_prediction) < 0.6
    print(render_table(
        ["mechanism", "msgs exp (paper)", "msgs exp (measured)",
         "work exp (paper)", "work exp (measured)"], rows))
    print("paper: MinWork Theta(mn)/Theta(mn); DMW Theta(mn^2)/"
          "O(mn^2 log p)")
    return ok


def reproduce_equivalence() -> bool:
    _section("E9 - faithful implementation: DMW outcome == MinWork outcome")
    rng = random.Random(0)
    ok = True
    for trial in range(5):
        parameters = DMWParameters.generate(5, fault_bound=1)
        problem = workloads.random_discrete(5, 2, parameters.bid_values,
                                            rng)
        outcome = run_dmw(problem, parameters=parameters,
                          rng=random.Random(trial))
        expected = MinWork().run(truthful_bids(problem))
        same = (outcome.completed
                and outcome.schedule == expected.schedule
                and list(outcome.payments) == list(expected.payments))
        ok = ok and same
    print("5/5 random instances: distributed schedule and payments "
          "identical to centralized MinWork" if ok
          else "MISMATCH FOUND — reproduction failure")
    return ok


def reproduce_faithfulness(profile: Dict) -> bool:
    _section("E5/E6 - Theorems 5 & 9: faithfulness, voluntary participation")
    parameters = DMWParameters.generate(5, fault_bound=1)
    problem = workloads.random_discrete(5, 2, parameters.bid_values,
                                        random.Random(11))
    outcomes = run_deviation_matrix(
        problem, parameters,
        deviant_indices=list(profile["deviant_indices"]))
    gains = faithfulness_violations(outcomes)
    losses = participation_violations(outcomes)
    print("%d deviation runs over %d strategies: %d profitable "
          "deviations, %d bystander losses"
          % (len(outcomes), len({o.strategy for o in outcomes}),
             len(gains), len(losses)))
    return not gains and not losses


def reproduce_privacy(profile: Dict) -> bool:
    _section("E7 - Theorem 10: collusion thresholds")
    n = profile["privacy_n"]
    parameters = DMWParameters.generate(n, fault_bound=1)
    problem = workloads.random_discrete(n, 2, parameters.bid_values,
                                        random.Random(9))
    rows = exposure_by_coalition_size(problem, parameters)
    print(render_table(["coalition size", "bids exposed", "bids attacked"],
                       [list(row) for row in rows]))
    # Coalitions of size <= c + 1 expose nothing.
    ok = all(exposed == 0 for size, exposed, _ in rows if size <= 2)
    print("coalitions of size <= c+1 = 2 expose nothing: %s"
          % ("confirmed" if ok else "VIOLATED"))
    return ok


def reproduce_approximation(profile: Dict) -> bool:
    _section("E8 - MinWork is an n-approximation (tight)")
    samples = adversarial_ratios(profile["adversarial"])
    print(render_table(["n", "MinWork makespan", "optimal", "ratio"],
                       [[s.num_agents, s.minwork_makespan,
                         s.optimal_makespan, s.ratio] for s in samples]))
    return all(abs(s.ratio - s.num_agents) < 1e-2 for s in samples)


def reproduce_extensions() -> bool:
    _section("X1/X2 - transcript leakage + Open Problem 11 threshold")
    parameters = DMWParameters.generate(5, fault_bound=1)
    problem = workloads.random_discrete(5, 1, parameters.bid_values,
                                        random.Random(3))
    outcome = run_dmw(problem, parameters=parameters)
    report = leakage_report(parameters, outcome.transcripts[0])
    print("transcript leakage: prior %.3f bits/loser, max leak %.3f, "
          "total %.3f" % (report.prior_bits, report.max_leak,
                          report.total_leak))
    rows = resilience_sweep(parameters)
    print(render_table(
        ["min bid", "predicted max deviators", "measured"],
        [[r.minimum_bid, r.predicted_threshold, r.measured_threshold]
         for r in rows]))
    return all(r.matches for r in rows)


def run_reproduction(profile_name: str = "quick") -> int:
    """Run every experiment; returns a process exit code (0 = all hold)."""
    if profile_name not in PROFILES:
        raise ValueError("unknown profile %r (options: %s)"
                         % (profile_name, sorted(PROFILES)))
    profile = PROFILES[profile_name]
    print("Reproducing Carroll & Grosu (PODC 2005 / JPDC 2011): "
          "Distributed MinWork")
    print("profile: %s" % profile_name)
    results = [
        ("Table 1 scaling", reproduce_table1(profile)),
        ("outcome equivalence", reproduce_equivalence()),
        ("faithfulness + participation", reproduce_faithfulness(profile)),
        ("privacy thresholds", reproduce_privacy(profile)),
        ("n-approximation", reproduce_approximation(profile)),
        ("extensions (leakage, resilience)", reproduce_extensions()),
    ]
    _section("SUMMARY")
    print(render_table(["experiment", "reproduced"],
                       [[name, ok] for name, ok in results]))
    return 0 if all(ok for _, ok in results) else 1
