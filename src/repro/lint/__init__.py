"""``python -m repro.lint`` — entry point alias for dmwlint.

The implementation lives in :mod:`repro.analysis.static`; this package
exists so the linter is reachable without remembering the nested module
path, mirroring the ``dmw`` CLI convention.
"""

from __future__ import annotations

from ..analysis.static import (  # noqa: F401  (re-exported API)
    ALL_RULES,
    DEFAULT_RULES,
    LintReport,
    Rule,
    Violation,
    lint_file,
    lint_source,
    rule_by_id,
    run_paths,
)
from ..analysis.static.cli import main

__all__ = [
    "ALL_RULES",
    "DEFAULT_RULES",
    "LintReport",
    "Rule",
    "Violation",
    "lint_file",
    "lint_source",
    "main",
    "rule_by_id",
    "run_paths",
]
