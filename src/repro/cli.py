"""Command-line interface: ``python -m repro <command>``.

Commands:

``run``
    Execute DMW on a random (or file-given) instance; print the schedule,
    payments, transcripts, and costs; optionally audit the transcript.
``minwork``
    Run the centralized baseline on the same kind of instance.
``faithfulness``
    Run the deviation matrix and report gains/participation.
``privacy``
    Mount the collusion attack at every coalition size.
``leakage``
    Quantify the transcript's information leakage per loser.
``table1``
    Regenerate Table 1's scaling exponents (communication + computation).

Every command accepts ``--seed`` and prints deterministic output, so the
CLI doubles as a reproducibility harness.  Instances can also be loaded
from a JSON file (``--instance``) holding a row-major time matrix.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional, Sequence

from .analysis import (
    exposure_by_coalition_size,
    faithfulness_violations,
    fit_loglog_slope,
    leakage_report,
    measure_dmw,
    measure_minwork,
    participation_violations,
    render_table,
    run_deviation_matrix,
    sweep_agents,
    sweep_tasks,
)
from .core import DMWParameters
from .core.agent import DMWAgent
from .core.audit import audit_protocol_run
from .core.protocol import DMWProtocol
from .core.trace import ProtocolTrace
from .mechanisms import MinWork, truthful_bids
from .obs import (
    FlightRecorder,
    HistoryStore,
    PhaseProfiler,
    SpanRecorder,
    entry_from_report,
    registry_for_run,
    run_report,
    write_chrome_trace,
    write_run_report,
)
from .scheduling import workloads
from .scheduling.problem import SchedulingProblem


def _load_instance(args, parameters: DMWParameters,
                   rng: random.Random) -> SchedulingProblem:
    """Build the instance from --instance JSON or randomly from W."""
    if args.instance:
        with open(args.instance) as handle:
            rows = json.load(handle)
        problem = SchedulingProblem(rows)
        if problem.num_agents != parameters.num_agents:
            raise SystemExit(
                "instance has %d agents but --agents is %d"
                % (problem.num_agents, parameters.num_agents)
            )
        return problem
    return workloads.random_discrete(parameters.num_agents, args.tasks,
                                     parameters.bid_values, rng)


def _build_parameters(args) -> DMWParameters:
    return DMWParameters.generate(
        args.agents, fault_bound=args.faults, group_size=args.group_size,
        share_verification_mode=getattr(args, "share_verification",
                                        "per-share"))


def _print_instance(problem: SchedulingProblem) -> None:
    print("true values t_i^j (agents x tasks):")
    for agent, row in enumerate(problem.times):
        print("  A%d: %s" % (agent + 1, [int(v) for v in row]))


def _emit_observability(args, outcome, agents, trace, recorder, parameters,
                        audit_report, flight=None) -> None:
    """Write the requested observability artefacts for one ``run``."""
    wants_report = bool(args.report or args.history)
    if not (wants_report or args.metrics or args.trace_json
            or args.chrome_trace or args.flight_json):
        return
    registry = registry_for_run(outcome, agents=agents, trace=trace,
                                recorder=recorder, audit_report=audit_report)
    document = None
    if wants_report:
        document = run_report(outcome, agents=agents, trace=trace,
                              recorder=recorder, registry=registry,
                              parameters=parameters,
                              audit_report=audit_report, flight=flight)
    if args.report:
        write_run_report(args.report, document)
        print("run report written to %s" % args.report)
    if args.trace_json:
        with open(args.trace_json, "w") as handle:
            json.dump(trace.to_list(), handle, indent=2)
            handle.write("\n")
        print("trace written to %s" % args.trace_json)
    if args.metrics:
        text = registry.to_prometheus()
        if args.metrics == "-":
            print("\n" + text, end="")
        else:
            with open(args.metrics, "w") as handle:
                handle.write(text)
            print("metrics written to %s" % args.metrics)
    if args.chrome_trace:
        write_chrome_trace(args.chrome_trace, recorder=recorder,
                           flight=flight)
        print("chrome trace written to %s" % args.chrome_trace)
    if args.flight_json and flight is not None:
        flight.dump(args.flight_json, reason="cli: --flight-json")
        print("flight log written to %s" % args.flight_json)
    if args.history and document is not None:
        store = HistoryStore(args.history)
        config = {"seed": args.seed, "parallel": bool(args.parallel),
                  "workers": args.workers,
                  "transport": getattr(args, "transport", "inprocess")}
        index = store.append(entry_from_report(document, config=config))
        print("history entry %d appended to %s" % (index, args.history))


def _build_network(args, parameters: DMWParameters):
    """Build a TimeoutNetwork when --timeout is set, else None (default)."""
    if args.timeout is None:
        if args.retries != 1 or args.retry_backoff != 2.0:
            raise SystemExit("--retries/--retry-backoff require --timeout")
        return None
    from .network import LatencyModel, RetryPolicy, TimeoutNetwork
    latency = LatencyModel(random.Random(args.seed + 2))
    policy = RetryPolicy(max_attempts=args.retries,
                         backoff=args.retry_backoff)
    return TimeoutNetwork(parameters.num_agents, latency,
                          round_timeout=args.timeout,
                          extra_participants=1, retry_policy=policy)


def _build_transport(args, parameters: DMWParameters):
    """Build the socket transport for --transport asyncio, else None.

    ``--timeout``/``--retries``/``--retry-backoff`` configure the
    transport's (simulated) barrier exactly as they configure a
    TimeoutNetwork on the in-process path.
    """
    if args.transport != "asyncio":
        return None
    if args.parallel:
        raise SystemExit("--transport asyncio does not support --parallel "
                         "(the phase-barrier and pool drivers are "
                         "in-process engines)")
    from .network.transport import create_transport
    kwargs = {}
    if args.timeout is None:
        if args.retries != 1 or args.retry_backoff != 2.0:
            raise SystemExit("--retries/--retry-backoff require --timeout")
    else:
        from .network import LatencyModel, RetryPolicy
        kwargs["latency_model"] = LatencyModel(random.Random(args.seed + 2))
        kwargs["round_timeout"] = args.timeout
        kwargs["retry_policy"] = RetryPolicy(max_attempts=args.retries,
                                             backoff=args.retry_backoff)
    return create_transport("asyncio", parameters.num_agents, **kwargs)


def cmd_run(args) -> int:
    parameters = _build_parameters(args)
    rng = random.Random(args.seed)
    problem = _load_instance(args, parameters, rng)
    _print_instance(problem)

    master = random.Random(args.seed + 1)
    agents = [
        DMWAgent(index, parameters,
                 [int(problem.time(index, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(parameters.num_agents)
    ]
    observing = bool(args.report or args.metrics or args.trace_json
                     or args.chrome_trace or args.profile or args.history)
    trace = (ProtocolTrace()
             if (args.trace or args.trace_json or args.report
                 or args.history) else None)
    recorder = SpanRecorder() if observing else None
    if recorder is not None and args.profile:
        recorder.profiler = PhaseProfiler(top_n=args.profile_top)
    flight = None
    if args.chrome_trace or args.flight_json or args.flight_dump:
        flight = FlightRecorder(capacity=args.flight_buffer)
        if args.flight_dump:
            flight.dump_on_abort = args.flight_dump
    transport = _build_transport(args, parameters)
    network = None if transport is not None else _build_network(args,
                                                                parameters)
    # The transport owns live sockets from this point on: everything up
    # to (and including) execute() runs under the finally so validation
    # errors in the protocol constructor cannot leak it.
    try:
        protocol = DMWProtocol(parameters, agents, trace=trace,
                               observer=recorder, network=network,
                               flight=flight, transport=transport)
        resume = None
        if args.resume:
            from . import serialization
            resume = serialization.load_checkpoint(args.resume)
            print("resuming from %s (next task %d, %d auctions done)"
                  % (args.resume, resume.next_task, len(resume.transcripts)))
        outcome = protocol.execute(problem.num_tasks, degraded=args.degraded,
                                   checkpoint_path=args.checkpoint,
                                   resume=resume, parallel=args.parallel,
                                   workers=args.workers)
    finally:
        if transport is not None:
            transport.close()
    if outcome.parallelism:
        print("process pool: %d workers, %d tasks pooled, %d batches"
              % (outcome.parallelism.get("workers", 0),
                 outcome.parallelism.get("tasks_pooled", 0),
                 outcome.parallelism.get("batches", 0)))
    if args.trace:
        print("\nprotocol trace:")
        print(trace.render())
        if recorder is not None:
            print("\nspan timeline:")
            print(recorder.render_timeline())
    if not outcome.completed:
        print("\nABORTED: %s (phase %s)" % (outcome.abort.reason,
                                            outcome.abort.phase))
        _emit_observability(args, outcome, agents, trace, recorder,
                            parameters, None, flight=flight)
        return 1
    print("\nschedule:", list(outcome.schedule.assignment))
    print("payments:", list(outcome.payments))
    for task in outcome.quarantined_tasks:
        abort = outcome.task_aborts[task]
        print("QUARANTINED task %d: %s (phase %s)"
              % (task, abort.reason, abort.phase))
    rows = [[t.task, t.first_price, "A%d" % (t.winner + 1), t.second_price]
            for t in outcome.transcripts]
    print(render_table(["task", "first price", "winner", "second price"],
                       rows))
    metrics = outcome.network_metrics
    print("\ncosts: %d messages, %d field elements, %d rounds, "
          "max agent work %d" % (metrics.point_to_point_messages,
                                 metrics.field_elements, metrics.rounds,
                                 outcome.max_agent_work))
    if metrics.retransmissions or metrics.recovered_messages:
        print("retries: %d retransmissions, %d recovered"
              % (metrics.retransmissions, metrics.recovered_messages))
    if args.output:
        from . import serialization
        serialization.save(outcome, args.output, trace=trace)
        print("outcome written to %s" % args.output)
    audit_report = None
    if args.audit:
        audit_report = audit_protocol_run(protocol, outcome)
        print("audit: %s (%d findings)"
              % ("PASS" if audit_report.ok else "FAIL",
                 len(audit_report.findings)))
        for finding in audit_report.findings:
            print("  [%s] task=%s: %s" % (finding.check, finding.task,
                                          finding.detail))
    _emit_observability(args, outcome, agents, trace, recorder, parameters,
                        audit_report, flight=flight)
    if audit_report is not None and not audit_report.ok:
        return 1
    return 0


def cmd_minwork(args) -> int:
    parameters = _build_parameters(args)
    rng = random.Random(args.seed)
    problem = _load_instance(args, parameters, rng)
    _print_instance(problem)
    result = MinWork().run(truthful_bids(problem))
    print("\nschedule:", list(result.schedule.assignment))
    print("payments:", list(result.payments))
    return 0


def cmd_faithfulness(args) -> int:
    parameters = _build_parameters(args)
    rng = random.Random(args.seed)
    problem = _load_instance(args, parameters, rng)
    outcomes = run_deviation_matrix(problem, parameters,
                                    deviant_indices=[0], seed=args.seed)
    rows = [[o.strategy, o.honest_utility, o.deviant_utility, o.gain,
             o.completed, o.abort_phase or "-"] for o in outcomes]
    print(render_table(["deviation", "U(honest)", "U(deviate)", "gain",
                        "completed", "abort phase"], rows))
    gains = faithfulness_violations(outcomes)
    losses = participation_violations(outcomes)
    print("\nfaithfulness violations: %d" % len(gains))
    print("participation violations: %d" % len(losses))
    return 1 if gains or losses else 0


def cmd_privacy(args) -> int:
    parameters = _build_parameters(args)
    rng = random.Random(args.seed)
    problem = _load_instance(args, parameters, rng)
    rows = [[size, exposed, total]
            for size, exposed, total
            in exposure_by_coalition_size(problem, parameters,
                                          seed=args.seed)]
    print(render_table(["coalition size", "bids exposed", "bids attacked"],
                       rows))
    return 0


def cmd_leakage(args) -> int:
    parameters = _build_parameters(args)
    rng = random.Random(args.seed)
    problem = _load_instance(args, parameters, rng)
    from .core.protocol import run_dmw
    outcome = run_dmw(problem, parameters=parameters,
                      rng=random.Random(args.seed + 1))
    if not outcome.completed:
        print("instance aborted; no transcript to analyze")
        return 1
    rows = []
    for transcript in outcome.transcripts:
        report = leakage_report(parameters, transcript)
        for loser in sorted(report.leaked_bits):
            rows.append([transcript.task, "A%d" % (loser + 1),
                         report.prior_bits,
                         report.posterior_bits[loser],
                         report.leaked_bits[loser]])
    print(render_table(["task", "loser", "prior bits", "posterior bits",
                        "leaked bits"], rows))
    return 0


def cmd_reproduce(args) -> int:
    from .reproduce import run_reproduction
    if not args.report:
        return run_reproduction(args.profile)

    class _Tee:
        """Write to stdout and the report file simultaneously."""

        def __init__(self, stream, handle):
            self._stream, self._handle = stream, handle

        def write(self, text):
            self._stream.write(text)
            self._handle.write(text)

        def flush(self):
            self._stream.flush()
            self._handle.flush()

    import contextlib
    with open(args.report, "w") as handle:
        with contextlib.redirect_stdout(_Tee(sys.stdout, handle)):
            code = run_reproduction(args.profile)
    print("report written to %s" % args.report)
    return code


def cmd_table1(args) -> int:
    agent_counts = (4, 6, 8, 10)
    task_counts = (1, 2, 4, 6)
    rows = []
    for name, measure in (("minwork", measure_minwork),
                          ("dmw", measure_dmw)):
        n_samples = sweep_agents(agent_counts, num_tasks=2, measure=measure)
        m_samples = sweep_tasks(task_counts, num_agents=6, measure=measure)
        rows.append([
            name,
            fit_loglog_slope([s.num_agents for s in n_samples],
                             [s.messages for s in n_samples]),
            fit_loglog_slope([s.num_tasks for s in m_samples],
                             [s.messages for s in m_samples]),
            fit_loglog_slope([s.num_agents for s in n_samples],
                             [s.computation for s in n_samples]),
            fit_loglog_slope([s.num_tasks for s in m_samples],
                             [s.computation for s in m_samples]),
        ])
    print("Table 1 regeneration: measured scaling exponents")
    print(render_table(["mechanism", "msgs vs n", "msgs vs m",
                        "work vs n", "work vs m"], rows))
    print("\npaper: MinWork Theta(mn)/Theta(mn); DMW Theta(mn^2)/"
          "O(mn^2 log p)")
    return 0


def _history_config_label(config) -> str:
    """Compact ``n=.. m=.. seed=..`` label for history tables."""
    parts: List[str] = []
    for key, label in (("num_agents", "n"), ("num_tasks", "m"),
                       ("seed", "seed"), ("backend", "backend"),
                       ("bench", "bench")):
        value = config.get(key)
        if value is not None:
            parts.append("%s=%s" % (label, value))
    if config.get("parallel"):
        parts.append("parallel(workers=%s)" % config.get("workers"))
    return " ".join(parts) or "-"


def cmd_history_list(args) -> int:
    entries = HistoryStore(args.store).load()
    if not entries:
        print("history store %s is empty" % args.store)
        return 0
    rows = []
    for index, entry in enumerate(entries, 1):
        wall = entry.get("wall_clock_s")
        messages = (entry.get("network") or {}).get(
            "point_to_point_messages")
        rows.append([index, entry.get("fingerprint"), entry.get("source"),
                     _history_config_label(entry.get("config") or {}),
                     "%.4f" % wall if wall is not None else "-",
                     messages if messages is not None else "-"])
    print(render_table(["#", "fingerprint", "source", "config",
                        "wall (s)", "messages"], rows))
    return 0


def cmd_history_show(args) -> int:
    entry = HistoryStore(args.store).entry(args.index)
    print(json.dumps(entry, indent=2, sort_keys=True))
    return 0


def cmd_history_diff(args) -> int:
    from .obs import diff_entries
    store = HistoryStore(args.store)
    diff = diff_entries(store.entry(args.a), store.entry(args.b))
    for line in diff["divergences"]:
        print("DIVERGENCE %s" % line)
    for line in diff["informational"]:
        print("info %s" % line)
    if diff["clean"]:
        print("clean: entries %d and %d agree on counters, network "
              "totals, and outcome" % (args.a, args.b))
        return 0
    print("DIVERGENT: %d deterministic field(s) differ between entries "
          "%d and %d" % (len(diff["divergences"]), args.a, args.b))
    return 1


def cmd_history_trend(args) -> int:
    from .obs import trend_rows
    entries = HistoryStore(args.store).load()
    rows = trend_rows(entries)
    if args.fingerprint:
        rows = [r for r in rows if r["fingerprint"] == args.fingerprint]
    if not rows:
        print("no matching history entries in %s" % args.store)
        return 0
    table = []
    anomaly_count = 0
    for row in rows:
        anomaly_count += len(row["anomalies"])
        table.append([
            row["index"], row["fingerprint"], row["source"],
            _history_config_label(row["config"]),
            ("%.4f" % row["wall_clock_s"]
             if row["wall_clock_s"] is not None else "-"),
            ("%.2f" % row["normalized"]
             if row["normalized"] is not None else "-"),
            row["messages"] if row["messages"] is not None else "-",
            "; ".join(row["anomalies"]) or "-",
        ])
    print(render_table(["#", "fingerprint", "source", "config", "wall (s)",
                        "normalized", "messages", "anomalies"], table))
    print("\n%d entries, %d anomaly flag(s)" % (len(rows), anomaly_count))
    return 0


def cmd_history_ingest(args) -> int:
    from .obs import entries_from_bench_dir
    entries = entries_from_bench_dir(args.results_dir)
    if not entries:
        print("no BENCH_*.json records under %s" % args.results_dir)
        return 1
    count = HistoryStore(args.store).extend(entries)
    print("ingested %d bench record(s) into %s" % (count, args.store))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed MinWork (Carroll & Grosu, PODC 2005) "
                    "reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub):
        sub.add_argument("--agents", "-n", type=int, default=5,
                         help="number of agents (default 5)")
        sub.add_argument("--tasks", "-m", type=int, default=3,
                         help="number of tasks (default 3)")
        sub.add_argument("--faults", "-c", type=int, default=1,
                         help="fault/collusion bound c (default 1)")
        sub.add_argument("--seed", type=int, default=0,
                         help="random seed (default 0)")
        sub.add_argument("--group-size", default="small",
                         choices=("tiny", "small", "medium", "large"),
                         help="cryptographic group size (default small)")
        sub.add_argument("--instance", default=None,
                         help="JSON file with a row-major time matrix")
        sub.add_argument("--backend", default=None,
                         choices=("python", "gmpy2", "auto"),
                         help="arithmetic backend (default: DMW_BACKEND "
                              "env var, else python); 'auto' picks gmpy2 "
                              "when importable")
        sub.add_argument("--share-verification", default="per-share",
                         choices=("per-share", "batched"),
                         help="share-bundle check mode: the paper's "
                              "per-share listing (default) or one RLC "
                              "multi-exp per sender (same counters, "
                              "lower wall-clock)")

    run_parser = subparsers.add_parser(
        "run", help="execute DMW on an instance")
    add_common(run_parser)
    run_parser.add_argument("--audit", action="store_true",
                            help="passively audit the public transcript")
    run_parser.add_argument("--trace", action="store_true",
                            help="print the structured protocol trace")
    run_parser.add_argument("--output", default=None,
                            help="write the outcome as JSON to this path")
    run_parser.add_argument("--report", default=None, metavar="PATH",
                            help="write a versioned JSON run report "
                                 "(spans, totals, metrics) to PATH")
    run_parser.add_argument("--trace-json", default=None, metavar="PATH",
                            help="write the structured event trace as "
                                 "JSON to PATH")
    run_parser.add_argument("--metrics", default=None, metavar="PATH",
                            help="write Prometheus text-format metrics to "
                                 "PATH ('-' for stdout)")
    run_parser.add_argument("--chrome-trace", default=None, metavar="PATH",
                            help="write a Chrome-trace (Perfetto-loadable) "
                                 "JSON merging spans and message events to "
                                 "PATH")
    run_parser.add_argument("--flight-json", default=None, metavar="PATH",
                            help="dump the full flight-recorder event log "
                                 "as JSON to PATH")
    run_parser.add_argument("--flight-dump", default=None, metavar="PATH",
                            help="on abort or quarantine, dump the flight "
                                 "recorder to PATH automatically")
    run_parser.add_argument("--flight-buffer", type=int, default=65536,
                            metavar="N",
                            help="flight-recorder ring-buffer capacity in "
                                 "events (default 65536)")
    run_parser.add_argument("--profile", action="store_true",
                            help="capture per-phase cProfile hotspots into "
                                 "the run report")
    run_parser.add_argument("--profile-top", type=int, default=10,
                            metavar="N",
                            help="hotspots per phase in the profile "
                                 "section (default 10)")
    run_parser.add_argument("--history", default=None, metavar="PATH",
                            help="append this run to the history store "
                                 "(JSONL) at PATH")
    run_parser.add_argument("--degraded", action="store_true",
                            help="graceful degradation: quarantine a "
                                 "faulty task's auction instead of "
                                 "voiding the run")
    run_parser.add_argument("--transport", default="inprocess",
                            choices=["inprocess", "asyncio"],
                            help="message transport: the in-process "
                                 "simulator (default) or localhost TCP "
                                 "with one asyncio task per agent (see "
                                 "docs/TRANSPORTS.md)")
    run_parser.add_argument("--timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="run over a latency-model network with "
                                 "this per-round barrier timeout")
    run_parser.add_argument("--retries", type=int, default=1, metavar="N",
                            help="transmission attempts per message under "
                                 "--timeout (default 1 = no retry)")
    run_parser.add_argument("--retry-backoff", type=float, default=2.0,
                            metavar="X",
                            help="grace-window backoff multiplier for "
                                 "retries (default 2.0)")
    run_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                            help="write a resume checkpoint to PATH after "
                                 "every completed auction (sequential or "
                                 "process-pool driver)")
    run_parser.add_argument("--resume", default=None, metavar="PATH",
                            help="resume a crashed run from the "
                                 "checkpoint at PATH")
    run_parser.add_argument("--parallel", action="store_true",
                            help="run the auctions concurrently: the "
                                 "phase-barrier driver by default, or the "
                                 "process-pool engine with --workers or "
                                 "--checkpoint/--resume")
    run_parser.add_argument("--workers", type=int, default=None, metavar="N",
                            help="shard the auctions across N OS processes "
                                 "(requires --parallel); outcomes are "
                                 "bit-identical to the sequential driver")
    run_parser.set_defaults(handler=cmd_run)

    minwork_parser = subparsers.add_parser(
        "minwork", help="run the centralized baseline")
    add_common(minwork_parser)
    minwork_parser.set_defaults(handler=cmd_minwork)

    faith_parser = subparsers.add_parser(
        "faithfulness", help="deviation matrix (Theorems 5 & 9)")
    add_common(faith_parser)
    faith_parser.set_defaults(handler=cmd_faithfulness)

    privacy_parser = subparsers.add_parser(
        "privacy", help="collusion attack sweep (Theorem 10)")
    add_common(privacy_parser)
    privacy_parser.set_defaults(handler=cmd_privacy)

    leakage_parser = subparsers.add_parser(
        "leakage", help="transcript information leakage")
    add_common(leakage_parser)
    leakage_parser.set_defaults(handler=cmd_leakage)

    table1_parser = subparsers.add_parser(
        "table1", help="regenerate Table 1's scaling exponents")
    table1_parser.set_defaults(handler=cmd_table1)

    history_parser = subparsers.add_parser(
        "history", help="query the persistent run-history store")
    history_sub = history_parser.add_subparsers(dest="action",
                                                required=True)

    def add_store(sub):
        sub.add_argument("--store",
                         default="benchmarks/results/history.jsonl",
                         metavar="PATH",
                         help="history JSONL path "
                              "(default %(default)s)")

    list_parser = history_sub.add_parser(
        "list", help="list every stored entry")
    add_store(list_parser)
    list_parser.set_defaults(handler=cmd_history_list)

    show_parser = history_sub.add_parser(
        "show", help="print one entry as JSON")
    add_store(show_parser)
    show_parser.add_argument("index", type=int,
                             help="1-based entry index (see 'list')")
    show_parser.set_defaults(handler=cmd_history_show)

    diff_parser = history_sub.add_parser(
        "diff", help="compare two entries; exits 1 on deterministic "
                     "divergence")
    add_store(diff_parser)
    diff_parser.add_argument("a", type=int, help="first entry index")
    diff_parser.add_argument("b", type=int, help="second entry index")
    diff_parser.set_defaults(handler=cmd_history_diff)

    trend_parser = history_sub.add_parser(
        "trend", help="per-fingerprint trajectories with Theorem 11/12 "
                      "anomaly flags")
    add_store(trend_parser)
    trend_parser.add_argument("--fingerprint", default=None,
                              help="only this config fingerprint")
    trend_parser.set_defaults(handler=cmd_history_trend)

    ingest_parser = history_sub.add_parser(
        "ingest-bench", help="ingest committed BENCH_*.json records")
    add_store(ingest_parser)
    ingest_parser.add_argument("results_dir",
                               help="directory holding BENCH_*.json files")
    ingest_parser.set_defaults(handler=cmd_history_ingest)

    reproduce_parser = subparsers.add_parser(
        "reproduce", help="regenerate every experiment in one run")
    reproduce_parser.add_argument("--profile", default="quick",
                                  choices=("quick", "full"),
                                  help="sweep sizes (default quick)")
    reproduce_parser.add_argument("--report", default=None,
                                  help="also write the output to this file")
    reproduce_parser.set_defaults(handler=cmd_reproduce)

    serve_parser = subparsers.add_parser(
        "serve", help="run the always-on auction service (HTTP gateway)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="interface to bind (default loopback)")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="TCP port (0 picks a free one)")
    serve_parser.add_argument("--warm-capacity", type=int, default=8,
                              help="groups kept in the warm-cache store")
    serve_parser.add_argument("--pool-workers", type=int, default=2,
                              help="processes in the resident pool for "
                                   "mode=pool jobs")
    serve_parser.add_argument("--max-queued", type=int, default=256,
                              help="submissions held before 503")
    serve_parser.set_defaults(handler=cmd_serve)

    return parser


def cmd_serve(args) -> int:
    from .service import serve
    return serve(host=args.host, port=args.port,
                 warm_capacity=args.warm_capacity,
                 pool_workers=args.pool_workers,
                 max_queued=args.max_queued)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "backend", None):
        from .crypto import backend as crypto_backend
        crypto_backend.select_backend(args.backend)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
