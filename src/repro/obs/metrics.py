"""A labeled metrics registry unifying every DMW telemetry source.

The registry speaks the Prometheus data model — named metrics carrying
labeled samples — in three instrument flavours:

* :class:`Counter` — monotone totals (messages, operations, complaints);
* :class:`Gauge` — point-in-time values (cache sizes, hit rate, rounds);
* :class:`Histogram` — bucketed distributions (span durations).

:func:`registry_for_run` populates the canonical DMW metric set from one
finished execution: per-agent :class:`~repro.crypto.modular.OperationCounter`
snapshots, :class:`~repro.network.metrics.NetworkMetrics` totals and
per-kind counts, complaint/abort events from the
:class:`~repro.core.trace.ProtocolTrace`, verification check counts from
:class:`~repro.core.verification.CheckStats`, fastexp
:class:`~repro.crypto.fastexp.PublicValueCache` hit/miss/size statistics,
and span durations from a :class:`~repro.obs.spans.SpanRecorder`.  The
full metric name/label reference lives in ``docs/OBSERVABILITY.md``.

Everything here *reads* counters that already exist — building a registry
never perturbs counted totals, and no registry is built unless asked for.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]

#: Default histogram buckets for span durations (seconds).
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0)


class _Metric:
    """Base class: one named metric holding labeled samples."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        _validate_metric_name(name)
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._samples: Dict[LabelValues, float] = {}

    def _key(self, labels: Dict[str, Any]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ValueError(
                "metric %s expects labels %r, got %r"
                % (self.name, self.label_names, tuple(sorted(labels))))
        return tuple(str(labels[name]) for name in self.label_names)

    def value(self, **labels: Any) -> float:
        """Current value of one labeled sample (0 when never touched)."""
        return self._samples.get(self._key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelValues, float]]:
        """All ``(label_values, value)`` pairs, sorted for stable output."""
        return sorted(self._samples.items())


class Counter(_Metric):
    """Monotonically increasing total."""

    type_name = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % amount)
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount


class Gauge(_Metric):
    """Point-in-time value."""

    type_name = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._samples[self._key(labels)] = float(value)

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    type_name = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, label_names)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._bucket_counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._counts: Dict[LabelValues, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        counts = self._bucket_counts.setdefault(
            key, [0] * (len(self.buckets) + 1))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
        counts[-1] += 1  # +Inf
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._counts[key] = self._counts.get(key, 0) + 1

    def snapshot(self, **labels: Any) -> Dict[str, Any]:
        """Return ``{buckets, sum, count}`` for one labeled series."""
        key = self._key(labels)
        return {
            "buckets": list(self._bucket_counts.get(
                key, [0] * (len(self.buckets) + 1))),
            "sum": self._sums.get(key, 0.0),
            "count": self._counts.get(key, 0),
        }

    def series(self) -> List[LabelValues]:
        return sorted(self._counts)


def _validate_metric_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError("invalid metric name %r" % name)
    if name[0].isdigit():
        raise ValueError("metric names must not start with a digit")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """A collection of named metrics with a Prometheus text exposition."""

    def __init__(self, namespace: str = "dmw") -> None:
        self.namespace = namespace
        self._metrics: Dict[str, _Metric] = {}

    # -- creation -------------------------------------------------------------
    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric) or \
                    existing.label_names != metric.label_names:
                raise ValueError(
                    "metric %s already registered with a different shape"
                    % metric.name)
            return existing
        self._metrics[metric.name] = metric
        return metric

    def _full_name(self, name: str) -> str:
        return "%s_%s" % (self.namespace, name) if self.namespace else name

    def counter(self, name: str, help_text: str,
                labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(self._full_name(name), help_text,
                                      labels))

    def gauge(self, name: str, help_text: str,
              labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(self._full_name(name), help_text,
                                    labels))

    def histogram(self, name: str, help_text: str,
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram(self._full_name(name), help_text,
                                        labels, buckets))

    # -- queries --------------------------------------------------------------
    def get(self, name: str) -> Optional[_Metric]:
        """Look up a metric by its full (namespaced) name."""
        return self._metrics.get(name)

    def __iter__(self) -> Iterable[_Metric]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export ---------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump: name -> {type, help, samples}."""
        result: Dict[str, Any] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                samples = [
                    {"labels": dict(zip(metric.label_names, key)),
                     **metric.snapshot(**dict(zip(metric.label_names, key)))}
                    for key in metric.series()
                ]
            else:
                samples = [
                    {"labels": dict(zip(metric.label_names, key)),
                     "value": value}
                    for key, value in metric.samples()
                ]
            result[metric.name] = {
                "type": metric.type_name,
                "help": metric.help_text,
                "samples": samples,
            }
        return result

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self:
            # A labeled metric (or histogram) that never saw a sample has
            # nothing to expose; emitting bare HELP/TYPE for it would not
            # round-trip, so skip it entirely.
            if isinstance(metric, Histogram):
                if not metric.series():
                    continue
            elif metric.label_names and not metric.samples():
                continue
            lines.append("# HELP %s %s" % (metric.name, metric.help_text))
            lines.append("# TYPE %s %s" % (metric.name, metric.type_name))
            if isinstance(metric, Histogram):
                for key in metric.series():
                    labels = dict(zip(metric.label_names, key))
                    snap = metric.snapshot(**labels)
                    cumulative = 0
                    for bound, in_bucket in zip(
                            list(metric.buckets) + [float("inf")],
                            snap["buckets"]):
                        cumulative = in_bucket
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_number(float(bound))
                        lines.append("%s_bucket%s %s" % (
                            metric.name, _render_labels(bucket_labels),
                            _format_number(float(cumulative))))
                    lines.append("%s_sum%s %s" % (
                        metric.name, _render_labels(labels),
                        repr(snap["sum"])))
                    lines.append("%s_count%s %s" % (
                        metric.name, _render_labels(labels),
                        _format_number(float(snap["count"]))))
            else:
                rendered_any = False
                for key, value in metric.samples():
                    labels = dict(zip(metric.label_names, key))
                    lines.append("%s%s %s" % (metric.name,
                                              _render_labels(labels),
                                              _format_number(value)))
                    rendered_any = True
                if not rendered_any and not metric.label_names:
                    lines.append("%s 0" % metric.name)
        return "\n".join(lines) + "\n"


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join('%s="%s"' % (name, _escape_label(str(value)))
                     for name, value in sorted(labels.items()))
    return "{%s}" % inner


# ---------------------------------------------------------------------------
# The canonical DMW registry
# ---------------------------------------------------------------------------

def registry_for_run(outcome: Any,
                     agents: Optional[Sequence[Any]] = None,
                     trace: Optional[Any] = None,
                     recorder: Optional[Any] = None,
                     audit_report: Optional[Any] = None,
                     namespace: str = "dmw") -> MetricsRegistry:
    """Build the canonical metric set from one finished execution.

    Parameters
    ----------
    outcome:
        The :class:`~repro.core.outcome.DMWOutcome` (required; supplies
        network metrics, per-agent operation snapshots, cache stats, and
        abort information).
    agents:
        The protocol's agents; supplies per-agent verification-check
        counts (:attr:`~repro.core.agent.DMWAgent.check_stats`).
    trace:
        A :class:`~repro.core.trace.ProtocolTrace`; supplies complaint
        and deviant-detection counts.
    recorder:
        A :class:`~repro.obs.spans.SpanRecorder`; supplies span-duration
        histograms per phase.
    audit_report:
        An :class:`~repro.core.audit.AuditReport`; supplies audit finding
        counts.
    """
    registry = MetricsRegistry(namespace=namespace)

    completed = registry.gauge(
        "run_completed", "1 when the execution completed, 0 when it voided")
    completed.set(1.0 if outcome.completed else 0.0)

    # -- network ---------------------------------------------------------------
    metrics = outcome.network_metrics
    messages = registry.counter(
        "network_messages_total",
        "Point-to-point messages (broadcasts expanded to n-1)", ["kind"])
    for kind in sorted(metrics.by_kind):
        messages.inc(metrics.by_kind[kind], kind=kind)
    registry.counter(
        "network_field_elements_total",
        "Field elements transmitted (broadcast-expanded)").inc(
            metrics.field_elements)
    registry.counter(
        "network_broadcast_events_total",
        "Publish operations before broadcast expansion").inc(
            metrics.broadcast_events)
    registry.gauge(
        "network_rounds", "Synchronous rounds executed").set(metrics.rounds)

    # -- resilience ------------------------------------------------------------
    # Always present (zero on fault-free runs) so dashboards can alert on
    # them without series discovery.
    registry.counter(
        "network_retries_total",
        "Unicast copies retransmitted during grace sub-rounds").inc(
            getattr(metrics, "retransmissions", 0))
    registry.counter(
        "network_recovered_total",
        "Late copies delivered by a retransmission instead of dropped").inc(
            getattr(metrics, "recovered_messages", 0))
    quarantines = registry.counter(
        "task_quarantines_total",
        "Auctions quarantined under graceful degradation, by phase",
        ["phase"])
    for _, abort_record in sorted(
            (getattr(outcome, "task_aborts", {}) or {}).items()):
        quarantines.inc(1, phase=abort_record.phase or "unknown")
    registry.gauge(
        "run_degraded",
        "1 when the execution ran in graceful-degradation mode").set(
            1.0 if getattr(outcome, "degraded", False) else 0.0)

    # -- counted operations ----------------------------------------------------
    operations = registry.counter(
        "agent_operations_total",
        "Counted modular operations per agent (Theorem 12 accounting)",
        ["agent", "op"])
    for index, snapshot in enumerate(outcome.agent_operations):
        for op, value in snapshot.items():
            operations.inc(value, agent=index, op=op)

    # -- aborts ---------------------------------------------------------------
    aborts = registry.counter(
        "aborts_total", "Protocol aborts by phase", ["phase"])
    if outcome.abort is not None:
        aborts.inc(1, phase=outcome.abort.phase or "unknown")

    # -- fastexp public-value cache -------------------------------------------
    cache_stats = getattr(outcome, "cache_stats", None) or {}
    if cache_stats:
        cache_events = registry.counter(
            "cache_events_total",
            "PublicValueCache lookups by namespace and result",
            ["namespace", "result"])
        for namespace_name, stat_prefix in (("evaluation", "evaluation"),
                                            ("weights", "weight")):
            for result, plural in (("hit", "hits"), ("miss", "misses")):
                key = "%s_%s" % (stat_prefix, plural)
                if key in cache_stats:
                    cache_events.inc(cache_stats[key],
                                     namespace=namespace_name, result=result)
        entries = registry.gauge(
            "cache_entries", "PublicValueCache stored entries by namespace",
            ["namespace"])
        for namespace_name, key in (("evaluation", "evaluations"),
                                    ("weights", "weight_vectors"),
                                    ("straus_tables", "straus_tables")):
            if key in cache_stats:
                entries.set(cache_stats[key], namespace=namespace_name)
        hits = cache_stats.get("hits", 0)
        misses = cache_stats.get("misses", 0)
        rate = hits / (hits + misses) if (hits + misses) else 0.0
        registry.gauge(
            "cache_hit_rate",
            "PublicValueCache hit fraction over all lookups").set(rate)

    # -- verification checks ---------------------------------------------------
    if agents is not None:
        checks = registry.counter(
            "verification_checks_total",
            "Verification equation evaluations per agent",
            ["agent", "equation", "result"])
        for agent in agents:
            stats = getattr(agent, "check_stats", None)
            if stats is None:
                continue
            for (equation, passed), count in stats.items():
                checks.inc(count, agent=agent.index, equation=equation,
                           result="pass" if passed else "fail")

    # -- trace-derived counts --------------------------------------------------
    if trace is not None:
        complaints = registry.counter(
            "complaints_total", "Complaint-round accusations by stage",
            ["stage"])
        deviants = registry.counter(
            "deviants_detected_total",
            "Distinct accused agents across all complaint rounds")
        accused_agents = set()
        for event in trace.events(kind="complaints"):
            stage = event.detail.get("stage", "unknown")
            accused = event.detail.get("accused", [])
            complaints.inc(len(accused), stage=stage)
            accused_agents.update(accused)
        if accused_agents:
            deviants.inc(len(accused_agents))

    # -- audit findings --------------------------------------------------------
    if audit_report is not None:
        findings = registry.counter(
            "audit_findings_total", "Transcript-audit findings by check",
            ["check"])
        for finding in audit_report.findings:
            findings.inc(1, check=finding.check)
        registry.gauge(
            "audit_ok", "1 when the transcript audit passed").set(
                1.0 if audit_report.ok else 0.0)

    # -- span durations --------------------------------------------------------
    if recorder is not None:
        durations = registry.histogram(
            "span_duration_seconds", "Wall-clock per span name",
            ["name", "kind"])
        for span in recorder:
            durations.observe(span.duration, name=span.name, kind=span.kind)
        phase_work = registry.counter(
            "phase_multiplication_work_total",
            "Counted multiplication work attributed per phase", ["phase"])
        phase_messages = registry.counter(
            "phase_messages_total",
            "Point-to-point messages attributed per phase", ["phase"])
        for span in recorder.phase_spans():
            phase_work.inc(span.operations.get("multiplication_work", 0),
                           phase=span.name)
            phase_messages.inc(
                span.network.get("point_to_point_messages", 0),
                phase=span.name)

    return registry


def bind_fastexp_metrics(registry: MetricsRegistry) -> None:
    """Publish the process-wide fixed-base table cache into ``registry``.

    Long-lived daemon observability (``docs/SERVICE.md``): the table
    cache behind :func:`repro.crypto.fastexp.fixed_base_table` used to
    be an opaque ``lru_cache``; these gauges make its hit rate, entry
    count, and approximate resident bytes scrapeable so operators can
    see (and bound) daemon memory.  Call again before each export to
    refresh the values.
    """
    from ..crypto.fastexp import fixed_base_table_stats

    stats = fixed_base_table_stats()
    descriptions = {
        "hits": "Fixed-base table cache hits since process start",
        "misses": "Fixed-base table cache misses since process start",
        "evictions": "Fixed-base tables evicted (LRU bound or explicit)",
        "entries": "Fixed-base tables currently cached",
        "approx_bytes": "Approximate resident bytes of cached tables",
    }
    for name, value in stats.items():
        registry.gauge("fixed_base_table_" + name,
                       descriptions.get(name, name)).set(value)
