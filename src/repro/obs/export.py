"""Run-report and Prometheus exporters for DMW observability.

Three artefacts leave the process:

* :func:`run_report` — one JSON document per ``execute()`` with a stable,
  versioned schema (``type: "dmw_run_report"``): outcome summary, grand
  totals, per-phase span attribution, cache statistics, the metrics
  registry dump, and (when tracing was on) the structured event trace.
  :func:`validate_run_report` checks a document against the schema — used
  by tests and the CI obs smoke job, with no external dependency.
* :func:`MetricsRegistry.to_prometheus` (re-exported here as
  :func:`to_prometheus`) — the text exposition format;
  :func:`parse_prometheus` is the matching round-trip parser used by
  tests and the CI format check.
* :meth:`~repro.obs.spans.SpanRecorder.render_timeline` — the
  human-readable view (the CLI prints it under ``--metrics``-free
  ``--trace`` runs via the classic trace, and under span tracing when a
  recorder is present).

Schema documentation lives in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from typing import Any, Dict, List, Optional, Tuple

from ..crypto import backend as crypto_backend
from .flight import FlightRecorder
from .metrics import MetricsRegistry, registry_for_run
from .spans import SpanRecorder

#: Bumped whenever the run-report schema changes shape.  Version 2 adds
#: the ``resilience`` section (retry/quarantine accounting — exact zeros
#: on fault-free runs, which the benchmark regression gate asserts).
#: Version 3 adds the ``parallelism`` section (process-pool driver
#: metadata — ``workers``/``tasks_pooled``/``batches``; empty for the
#: in-process drivers).  Version 4 adds ``flight_summary`` (the flight
#: recorder's per-type/per-kind message-event tallies; empty when flight
#: recording was off), ``profile`` (per-phase cProfile hotspots; empty
#: without ``--profile``), and ``provenance`` (package version,
#: arithmetic backend, git commit when available) so historical runs are
#: attributable.  Earlier documents remain valid.
REPORT_VERSION = 4

#: Versions :func:`validate_run_report` accepts.
_ACCEPTED_VERSIONS = (2, 3, 4)


def _sum_operations(agent_operations) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for snapshot in agent_operations:
        for key, value in snapshot.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def run_report(outcome: Any,
               agents: Optional[Any] = None,
               trace: Optional[Any] = None,
               recorder: Optional[SpanRecorder] = None,
               registry: Optional[MetricsRegistry] = None,
               parameters: Optional[Any] = None,
               audit_report: Optional[Any] = None,
               flight: Optional[FlightRecorder] = None,
               profiler: Optional[Any] = None) -> Dict[str, Any]:
    """Build the JSON run-report document for one finished execution.

    Only ``outcome`` is required; every other source enriches the report
    when available.  When ``registry`` is omitted one is built via
    :func:`~repro.obs.metrics.registry_for_run` from the same inputs;
    when ``profiler`` is omitted the recorder's installed
    :class:`~repro.obs.profile.PhaseProfiler` (if any) is used.
    """
    if registry is None:
        registry = registry_for_run(outcome, agents=agents, trace=trace,
                                    recorder=recorder,
                                    audit_report=audit_report)
    operations_total = _sum_operations(outcome.agent_operations)

    phases: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    if recorder is not None:
        spans = [span.to_dict() for span in recorder]
        events = [event.to_dict() for event in recorder.events]
        for span in recorder.phase_spans():
            phases.append({
                "name": span.name,
                "task": span.task,
                "duration_s": span.duration,
                "operations": dict(span.operations),
                "network": dict(span.network),
            })

    document: Dict[str, Any] = {
        "type": "dmw_run_report",
        "version": REPORT_VERSION,
        "params": _params_summary(parameters, outcome),
        "completed": outcome.completed,
        "abort": ({
            "reason": outcome.abort.reason,
            "phase": outcome.abort.phase,
            "task": outcome.abort.task,
            "detected_by": outcome.abort.detected_by,
            "offender": outcome.abort.offender,
        } if outcome.abort is not None else None),
        "schedule": (list(outcome.schedule.assignment)
                     if outcome.schedule is not None else None),
        "payments": (list(outcome.payments)
                     if outcome.payments is not None else None),
        "totals": {
            "operations": operations_total,
            "operations_per_agent": [dict(snapshot) for snapshot
                                     in outcome.agent_operations],
            "network": outcome.network_metrics.as_dict(),
        },
        "cache": dict(getattr(outcome, "cache_stats", None) or {}),
        "resilience": resilience_summary(outcome),
        "parallelism": dict(getattr(outcome, "parallelism", None) or {}),
        "phases": phases,
        "spans": spans,
        "events": events,
        "metrics": registry.as_dict(),
        "trace": ([event.to_dict() for event in trace]
                  if trace is not None and len(trace) else None),
    }
    if profiler is None and recorder is not None:
        profiler = getattr(recorder, "profiler", None)
    document["flight_summary"] = (flight.summary()
                                  if flight is not None and flight.enabled
                                  else {})
    document["profile"] = profiler.report() if profiler is not None else {}
    document["provenance"] = provenance_summary()
    return document


_GIT_COMMIT_CACHE: List[Optional[str]] = []


def _git_commit() -> Optional[str]:
    """The current git commit hash, or ``None`` outside a work tree.

    Memoized per process: provenance is stamped on every report and a
    subprocess per call would dominate small runs.
    """
    if not _GIT_COMMIT_CACHE:
        commit: Optional[str] = None
        try:
            result = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True, text=True, timeout=5, check=False)
            if result.returncode == 0 and result.stdout.strip():
                commit = result.stdout.strip()
        except Exception:
            commit = None
        _GIT_COMMIT_CACHE.append(commit)
    return _GIT_COMMIT_CACHE[0]


def provenance_summary() -> Dict[str, Any]:
    """The ``provenance`` section: who/what produced this document.

    ``package_version`` and ``arithmetic_backend`` are always present;
    ``git_commit`` appears when the package runs from a git work tree.
    """
    try:
        # Imported lazily: ``repro.__version__`` is assigned after the
        # package's re-exports, so a module-level import here would see a
        # partially-initialized package during startup.
        from .. import __version__ as package_version
    except Exception:
        package_version = "unknown"
    provenance: Dict[str, Any] = {
        "package_version": package_version,
        "arithmetic_backend": crypto_backend.ACTIVE.name,
        "python_version": platform.python_version(),
    }
    commit = _git_commit()
    if commit is not None:
        provenance["git_commit"] = commit
    return provenance


def resilience_summary(outcome: Any) -> Dict[str, Any]:
    """The resilience section of the run report (``docs/RESILIENCE.md``).

    Every field is exactly zero/false/empty on a fault-free run — the
    benchmark regression gate (``benchmarks/check_regression.py``) pins
    that down so retries and quarantines can never silently leak into
    the headline Theorem 11/12 accounting.
    """
    metrics = outcome.network_metrics
    task_aborts = getattr(outcome, "task_aborts", {}) or {}
    return {
        "retransmissions": getattr(metrics, "retransmissions", 0),
        "recovered_messages": getattr(metrics, "recovered_messages", 0),
        "degraded": bool(getattr(outcome, "degraded", False)),
        "quarantined_tasks": sorted(task_aborts),
        "task_aborts": {
            str(task): {
                "reason": abort.reason,
                "phase": abort.phase,
                "detected_by": abort.detected_by,
                "offender": abort.offender,
            }
            for task, abort in sorted(task_aborts.items())
        },
    }


def _params_summary(parameters: Optional[Any],
                    outcome: Any) -> Dict[str, Any]:
    summary: Dict[str, Any] = {
        "num_agents": len(outcome.agent_operations) or None,
        "num_tasks": len(outcome.transcripts) or None,
    }
    if parameters is not None:
        summary.update({
            "num_agents": parameters.num_agents,
            "fault_bound": parameters.fault_bound,
            "bid_values": list(parameters.bid_values),
            "sigma": parameters.sigma,
            "p_bits": parameters.group.p_bits,
            "verification_mode": parameters.verification_mode,
            "share_verification_mode": parameters.share_verification_mode,
        })
    # Execution-environment provenance: which arithmetic engine computed
    # the (backend-invariant) values of this run.
    summary["arithmetic_backend"] = crypto_backend.ACTIVE.name
    return summary


def write_run_report(path: str, document: Dict[str, Any]) -> None:
    """Serialize a run-report document to ``path`` (pretty, sorted keys)."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Schema validation (dependency-free)
# ---------------------------------------------------------------------------

class ReportSchemaError(ValueError):
    """Raised when a run-report document violates the schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ReportSchemaError(message)


_COUNTER_KEYS = ("additions", "multiplications", "inversions",
                 "exponentiations", "multiplication_work")
_NETWORK_KEYS = ("point_to_point_messages", "broadcast_events",
                 "field_elements", "rounds")
_SPAN_KEYS = ("span_id", "parent_id", "name", "kind", "task", "start_s",
              "end_s", "duration_s", "attributes", "operations", "network")


def validate_run_report(document: Any) -> None:
    """Validate a run-report document; raises :class:`ReportSchemaError`.

    Checks structural shape *and* the accounting invariant: the per-phase
    operation and message deltas must sum exactly to the run's grand
    totals whenever phase spans are present.
    """
    _require(isinstance(document, dict), "report must be a JSON object")
    _require(document.get("type") == "dmw_run_report",
             "type must be 'dmw_run_report'")
    _require(document.get("version") in _ACCEPTED_VERSIONS,
             "unsupported report version %r" % document.get("version"))
    for key in ("params", "completed", "totals", "cache", "resilience",
                "phases", "spans", "events", "metrics"):
        _require(key in document, "missing key %r" % key)
    if document["version"] >= 3:
        _require("parallelism" in document, "missing key 'parallelism'")
        _require(isinstance(document["parallelism"], dict),
                 "parallelism must be an object")
    if document["version"] >= 4:
        for key in ("flight_summary", "profile", "provenance"):
            _require(key in document, "missing key %r" % key)
            _require(isinstance(document[key], dict),
                     "%s must be an object" % key)
        provenance = document["provenance"]
        for key in ("package_version", "arithmetic_backend"):
            _require(key in provenance, "provenance missing %r" % key)
        flight_summary = document["flight_summary"]
        if flight_summary:
            for key in ("events_recorded", "events_retained", "capacity",
                        "messages", "by_type", "by_kind"):
                _require(key in flight_summary,
                         "flight_summary missing %r" % key)
            _require(flight_summary["events_retained"]
                     <= flight_summary["events_recorded"],
                     "flight_summary retains more events than recorded")
            _require(sum(flight_summary["by_type"].values())
                     == flight_summary["events_recorded"],
                     "flight_summary.by_type must sum to events_recorded")
            _require(sum(flight_summary["by_kind"].values())
                     == flight_summary["events_recorded"],
                     "flight_summary.by_kind must sum to events_recorded")
        profile = document["profile"]
        if profile:
            _require("phases" in profile and "top_n" in profile,
                     "profile must carry phases and top_n")
            for phase_name, body in profile["phases"].items():
                for key in ("functions_profiled", "calls", "time_s",
                            "hotspots"):
                    _require(key in body,
                             "profile phase %r missing %r"
                             % (phase_name, key))
    _require(isinstance(document["completed"], bool),
             "completed must be a bool")

    resilience = document["resilience"]
    _require(isinstance(resilience, dict), "resilience must be an object")
    for key in ("retransmissions", "recovered_messages", "degraded",
                "quarantined_tasks", "task_aborts"):
        _require(key in resilience, "resilience missing %r" % key)
    _require(isinstance(resilience["degraded"], bool),
             "resilience.degraded must be a bool")
    _require(sorted(int(task) for task in resilience["task_aborts"])
             == list(resilience["quarantined_tasks"]),
             "resilience.quarantined_tasks must mirror task_aborts keys")

    totals = document["totals"]
    _require(isinstance(totals, dict), "totals must be an object")
    for key in ("operations", "operations_per_agent", "network"):
        _require(key in totals, "totals missing %r" % key)
    for key in _COUNTER_KEYS:
        _require(key in totals["operations"],
                 "totals.operations missing %r" % key)
    for key in _NETWORK_KEYS:
        _require(key in totals["network"],
                 "totals.network missing %r" % key)

    per_agent = totals["operations_per_agent"]
    _require(isinstance(per_agent, list),
             "operations_per_agent must be a list")
    for key in _COUNTER_KEYS:
        summed = sum(snapshot.get(key, 0) for snapshot in per_agent)
        _require(summed == totals["operations"][key],
                 "per-agent %s sum %d != total %d"
                 % (key, summed, totals["operations"][key]))

    _require(isinstance(document["phases"], list), "phases must be a list")
    for phase in document["phases"]:
        for key in ("name", "task", "duration_s", "operations", "network"):
            _require(key in phase, "phase entry missing %r" % key)

    _require(isinstance(document["spans"], list), "spans must be a list")
    for span in document["spans"]:
        for key in _SPAN_KEYS:
            _require(key in span, "span entry missing %r" % key)
        _require(span["end_s"] >= span["start_s"],
                 "span %r ends before it starts" % span.get("name"))

    # Accounting invariant: phases partition the run exactly.
    if document["phases"]:
        for key in _COUNTER_KEYS:
            attributed = sum(phase["operations"].get(key, 0)
                             for phase in document["phases"])
            _require(attributed == totals["operations"][key],
                     "phase %s sum %d != grand total %d"
                     % (key, attributed, totals["operations"][key]))
        for key in _NETWORK_KEYS:
            attributed = sum(phase["network"].get(key, 0)
                             for phase in document["phases"])
            _require(attributed == totals["network"][key],
                     "phase network %s sum %d != grand total %d"
                     % (key, attributed, totals["network"][key]))

    metrics = document["metrics"]
    _require(isinstance(metrics, dict), "metrics must be an object")
    for name, body in metrics.items():
        _require(isinstance(body, dict) and "type" in body
                 and "samples" in body,
                 "metric %r must carry type and samples" % name)

    trace = document.get("trace")
    if trace is not None:
        _require(isinstance(trace, list), "trace must be a list or null")
        for event in trace:
            for key in ("sequence", "kind", "detail"):
                _require(key in event, "trace event missing %r" % key)


# ---------------------------------------------------------------------------
# Prometheus text-format round-trip parser
# ---------------------------------------------------------------------------

class PrometheusParseError(ValueError):
    """Raised on malformed exposition text."""


def parse_prometheus(text: str
                     ) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                               float]:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(label, value)`` pairs.  The parser
    validates ``# HELP``/``# TYPE`` comment structure and sample syntax;
    it exists for round-trip testing of :meth:`MetricsRegistry.to_prometheus`
    and the CI smoke job, not as a general scrape client.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    typed: Dict[str, str] = {}
    # Split on "\n" only: the exposition format's line separator.  Using
    # str.splitlines() here would also break lines at \r, \v, \f, \x85,
    #   ... — characters _escape_label leaves raw inside quoted
    # label values — truncating such a sample mid-line and breaking the
    # to_prometheus round-trip.
    for line_number, raw in enumerate(text.split("\n"), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise PrometheusParseError(
                    "line %d: malformed comment %r" % (line_number, raw))
            if parts[1] == "TYPE":
                type_value = parts[3] if len(parts) > 3 else ""
                if type_value not in ("counter", "gauge", "histogram",
                                      "summary", "untyped"):
                    raise PrometheusParseError(
                        "line %d: unknown metric type %r"
                        % (line_number, type_value))
                typed[parts[2]] = type_value
            continue
        name, labels, value = _parse_sample(line, line_number)
        key = (name, labels)
        if key in samples:
            raise PrometheusParseError(
                "line %d: duplicate sample %r" % (line_number, key))
        samples[key] = value
    for name in typed:
        base_names = {sample_name.rsplit("_bucket", 1)[0]
                      .rsplit("_sum", 1)[0].rsplit("_count", 1)[0]
                      for sample_name, _ in samples}
        sample_names = {sample_name for sample_name, _ in samples}
        if name not in sample_names and name not in base_names:
            raise PrometheusParseError(
                "TYPE declared for %r but no samples present" % name)
    return samples


def _parse_sample(line: str, line_number: int
                  ) -> Tuple[str, Tuple[Tuple[str, str], ...], float]:
    label_pairs: List[Tuple[str, str]] = []
    if "{" in line:
        brace_open = line.index("{")
        brace_close = line.rfind("}")
        if brace_close < brace_open:
            raise PrometheusParseError("line %d: mismatched braces"
                                       % line_number)
        name = line[:brace_open]
        body = line[brace_open + 1:brace_close]
        rest = line[brace_close + 1:].strip()
        index = 0
        while index < len(body):
            equals = body.index("=", index)
            label_name = body[index:equals].strip()
            if body[equals + 1] != '"':
                raise PrometheusParseError(
                    "line %d: unquoted label value" % line_number)
            cursor = equals + 2
            value_chars: List[str] = []
            while cursor < len(body):
                char = body[cursor]
                if char == "\\":
                    escape = body[cursor + 1]
                    value_chars.append(
                        {"\\": "\\", '"': '"', "n": "\n"}.get(escape,
                                                              escape))
                    cursor += 2
                    continue
                if char == '"':
                    break
                value_chars.append(char)
                cursor += 1
            else:
                raise PrometheusParseError(
                    "line %d: unterminated label value" % line_number)
            label_pairs.append((label_name, "".join(value_chars)))
            index = cursor + 1
            if index < len(body) and body[index] == ",":
                index += 1
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise PrometheusParseError("line %d: malformed sample %r"
                                       % (line_number, line))
        name, rest = parts
    if not rest:
        raise PrometheusParseError("line %d: sample missing value"
                                   % line_number)
    value_text = rest.split()[0]
    if value_text == "+Inf":
        value = float("inf")
    elif value_text == "-Inf":
        value = float("-inf")
    else:
        try:
            value = float(value_text)
        except ValueError:
            raise PrometheusParseError(
                "line %d: bad sample value %r"
                % (line_number, value_text)) from None
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise PrometheusParseError("line %d: bad metric name %r"
                                   % (line_number, name))
    return name, tuple(sorted(label_pairs)), value


def to_prometheus(registry: MetricsRegistry) -> str:
    """Convenience alias for :meth:`MetricsRegistry.to_prometheus`."""
    return registry.to_prometheus()
