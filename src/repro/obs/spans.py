"""Span-based tracing for DMW protocol runs.

A *span* is a named, timestamped interval of one protocol execution:
``run -> task -> phase`` (``bidding``, ``aggregation``, ``disclosure``,
``resolution``) plus the run-level ``payments`` phase.  Every span is
attributed three delta vectors captured at enter/exit:

* **wall-clock** — ``time.perf_counter`` offsets from the recorder epoch;
* **counted operations** — the delta of the summed per-agent
  :class:`~repro.crypto.modular.OperationCounter` totals (additions,
  multiplications, inversions, exponentiations, multiplication work);
* **network activity** — the delta of
  :meth:`~repro.network.metrics.NetworkMetrics.as_dict` (messages, field
  elements, rounds, broadcasts, per-kind counts).

Because every counted operation and every transmitted message of an
execution happens *inside* one of the phase spans, the per-phase deltas
partition the run's grand totals exactly — the invariant
``tests/test_obs.py`` pins down and the run report relies on
(``docs/OBSERVABILITY.md``).

Observability is opt-in.  The module-level :data:`NULL_RECORDER` (an
:class:`_NullRecorder`) is installed by default; its :meth:`span` returns
a shared no-op context manager and its :meth:`event` discards the call,
so a run without observability performs no snapshotting, no timestamping,
and no per-span allocation.  The hot network path additionally guards on
:attr:`SpanRecorder.enabled` so the disabled path stays allocation-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Span kinds in nesting order.
KIND_RUN = "run"
KIND_TASK = "task"
KIND_PHASE = "phase"

#: The protocol phase names, in execution order within one auction.
PHASES = ("bidding", "aggregation", "disclosure", "resolution")
#: The run-level phase that follows all auctions.
PAYMENTS_PHASE = "payments"


@dataclass
class Span:
    """One finished span.

    ``start``/``end`` are seconds since the recorder epoch (the recorder's
    construction time), so spans from one run order naturally and JSON
    exports stay small.  ``operations`` and ``network`` hold the
    enter->exit deltas described in the module docstring.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    task: Optional[int]
    start: float
    end: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    operations: Dict[str, int] = field(default_factory=dict)
    network: Dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent inside the span."""
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly encoding (stable keys; see the run-report schema)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "task": self.task,
            "start_s": self.start,
            "end_s": self.end,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
            "operations": dict(self.operations),
            "network": dict(self.network),
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "Span":
        """Decode a span encoded by :meth:`to_dict` (round-trip).

        Used by the process-pool driver (:mod:`repro.parallel`) to graft
        worker-side spans back into the parent recorder.
        """
        return cls(
            span_id=document["span_id"],
            parent_id=document["parent_id"],
            name=document["name"],
            kind=document["kind"],
            task=document["task"],
            start=document["start_s"],
            end=document["end_s"],
            attributes=dict(document.get("attributes") or {}),
            operations=dict(document.get("operations") or {}),
            network=dict(document.get("network") or {}),
        )


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time event attached to the span open when it fired."""

    timestamp: float
    span_id: Optional[int]
    name: str
    attributes: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "timestamp_s": self.timestamp,
            "span_id": self.span_id,
            "name": self.name,
            "attributes": dict(self.attributes),
        }


def _dict_delta(after: Dict[str, int], before: Dict[str, int]
                ) -> Dict[str, int]:
    """Per-key ``after - before`` (missing keys count as zero)."""
    delta: Dict[str, int] = {}
    for key, value in after.items():
        change = value - before.get(key, 0)
        if change:
            delta[key] = change
    return delta


class _SpanContext:
    """Context manager produced by :meth:`SpanRecorder.span`."""

    __slots__ = ("_recorder", "_span", "_ops_before", "_net_before")

    def __init__(self, recorder: "SpanRecorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span
        self._ops_before: Dict[str, int] = {}
        self._net_before: Dict[str, int] = {}

    def __enter__(self) -> Span:
        recorder = self._recorder
        if recorder._ops_source is not None:
            self._ops_before = recorder._ops_source()
        if recorder._net_source is not None:
            self._net_before = recorder._net_source()
        self._span.start = recorder.clock() - recorder.epoch
        recorder._stack.append(self._span.span_id)
        if recorder.profiler is not None and self._span.kind == KIND_PHASE:
            recorder.profiler.start(self._span.name)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        recorder = self._recorder
        span = self._span
        if recorder.profiler is not None and span.kind == KIND_PHASE:
            recorder.profiler.stop(span.name)
        span.end = recorder.clock() - recorder.epoch
        if recorder._ops_source is not None:
            span.operations = _dict_delta(recorder._ops_source(),
                                          self._ops_before)
        if recorder._net_source is not None:
            span.network = _dict_delta(recorder._net_source(),
                                       self._net_before)
        if exc_type is not None:
            span.attributes["error"] = exc_type.__name__
        recorder._stack.pop()
        recorder.spans.append(span)
        return None  # never swallow exceptions


class SpanRecorder:
    """Collects spans and events for one (or more) protocol executions.

    The recorder is *bound* to a protocol at the start of ``execute()``
    via :meth:`bind`, which installs the two snapshot sources the span
    deltas are computed from.  One recorder can observe several
    consecutive executions; span ids stay unique and timestamps share one
    epoch.
    """

    #: Real recorders take snapshots; the null recorder advertises False
    #: so hot paths can skip building event payloads entirely.
    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self.clock = clock
        self.epoch = clock()
        self.spans: List[Span] = []
        self.events: List[SpanEvent] = []
        self._stack: List[int] = []
        self._next_id = 0
        self._ops_source: Optional[Callable[[], Dict[str, int]]] = None
        self._net_source: Optional[Callable[[], Dict[str, int]]] = None
        #: Optional :class:`~repro.obs.profile.PhaseProfiler`; when set,
        #: every phase-kind span runs under a cProfile capture keyed by
        #: the phase name (``--profile`` on the CLI).
        self.profiler: Optional[Any] = None

    # -- wiring ---------------------------------------------------------------
    def bind(self, ops_source: Optional[Callable[[], Dict[str, int]]],
             net_source: Optional[Callable[[], Dict[str, int]]]) -> None:
        """Install the operation/network snapshot sources for delta capture."""
        self._ops_source = ops_source
        self._net_source = net_source

    # -- recording ------------------------------------------------------------
    def span(self, name: str, kind: str = KIND_PHASE,
             task: Optional[int] = None,
             **attributes: Any) -> _SpanContext:
        """Open a span; use as ``with recorder.span("bidding", task=0): ...``."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(span_id=span_id, parent_id=parent, name=name, kind=kind,
                    task=task, start=0.0, end=0.0, attributes=attributes)
        return _SpanContext(self, span)

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event under the currently open span."""
        self.events.append(SpanEvent(
            timestamp=self.clock() - self.epoch,
            span_id=self._stack[-1] if self._stack else None,
            name=name, attributes=attributes,
        ))

    # -- queries --------------------------------------------------------------
    def find(self, kind: Optional[str] = None, name: Optional[str] = None,
             task: Optional[int] = None) -> List[Span]:
        """Finished spans filtered by kind/name/task."""
        return [span for span in self.spans
                if (kind is None or span.kind == kind)
                and (name is None or span.name == name)
                and (task is None or span.task == task)]

    def root_spans(self) -> List[Span]:
        """Spans with no parent (normally one ``run`` span per execution)."""
        return [span for span in self.spans if span.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in completion order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def phase_spans(self) -> List[Span]:
        """Every phase-kind span, in completion order."""
        return self.find(kind=KIND_PHASE)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    # -- rendering ------------------------------------------------------------
    def render_timeline(self) -> str:
        """Human-readable nested timeline (the ``--trace``-style view)."""
        lines: List[str] = []
        by_parent: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        for bucket in by_parent.values():
            bucket.sort(key=lambda s: (s.start, s.span_id))

        def walk(parent: Optional[int], depth: int) -> None:
            for span in by_parent.get(parent, []):
                scope = ("task %d" % span.task
                         if span.task is not None else span.kind)
                ops = span.operations.get("multiplication_work", 0)
                msgs = span.network.get("point_to_point_messages", 0)
                lines.append(
                    "%s%-12s %-10s %9.3fms  work=%-8d msgs=%d"
                    % ("  " * depth, span.name, scope,
                       span.duration * 1e3, ops, msgs))
                walk(span.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)


class _NullRecorder(SpanRecorder):
    """Discards everything; the default when observability is off."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0)

    def bind(self, ops_source, net_source) -> None:
        pass

    def span(self, name: str, kind: str = KIND_PHASE,
             task: Optional[int] = None, **attributes: Any):
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, **attributes: Any) -> None:
        pass


class _NullSpanContext:
    """Shared, reusable no-op span context (no per-call allocation)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()

#: The process-wide disabled recorder (mirrors ``trace.NULL_TRACE``).
NULL_RECORDER = _NullRecorder()
