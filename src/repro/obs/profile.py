"""Opt-in per-phase cProfile capture with hotspot attribution.

Theorem 12 bounds the mechanism's *computation* (O(mn^2 log p) per
phase-critical path), but the span timeline only attributes wall-clock.
The phase profiler closes that gap: when a :class:`PhaseProfiler` is
installed on a :class:`~repro.obs.spans.SpanRecorder` (``recorder.profiler
= PhaseProfiler()``), every phase-kind span (the four DMW auction phases
plus the run-level payments phase) runs under a :mod:`cProfile` capture,
and the per-function statistics are aggregated *per phase name* across
all auctions.

The aggregate is a plain ``{phase: {function: [ncalls, tottime,
cumtime]}}`` mapping, so it survives pickling across process-pool
workers: each worker exports its aggregate (:meth:`PhaseProfiler.export`)
inside the shard result and the parent merges additively
(:meth:`PhaseProfiler.merge`) — the same phase profiled in eight shards
reports the summed call counts, exactly like the sequential driver.

:meth:`PhaseProfiler.report` renders the run-report ``profile`` section:
per phase, the total primitive-call count and profiled time plus the
top-N hotspots by exclusive (``tottime``) time.  Function keys are
``basename:line(function)`` so reports stay machine-portable.

Profiling is strictly opt-in (`--profile` on the CLI): ``cProfile``
instrumentation costs real time, so it must never be on during
benchmark-gated runs.  See ``docs/OBSERVABILITY.md`` ("Phase profiling").
"""

from __future__ import annotations

import cProfile
import os
import pstats
from typing import Any, Dict, List, Optional

#: Default hotspot count per phase in :meth:`PhaseProfiler.report`.
DEFAULT_TOP_N = 10


class PhaseProfiler:
    """Aggregates cProfile captures per phase name.

    The span recorder drives :meth:`start`/:meth:`stop` around each
    phase-kind span; phases never nest (auction phases sit under task
    spans, payments under the run span), so a single active capture
    suffices — a nested start while a capture is live is ignored rather
    than corrupting the active profile.
    """

    def __init__(self, top_n: int = DEFAULT_TOP_N) -> None:
        if top_n < 1:
            raise ValueError("profiler top_n must be positive")
        self.top_n = top_n
        #: phase -> function key -> [ncalls, tottime_s, cumtime_s]
        self._phase_stats: Dict[str, Dict[str, List[float]]] = {}
        self._active: Optional[cProfile.Profile] = None
        self._active_phase: Optional[str] = None

    # -- capture --------------------------------------------------------------
    def start(self, phase: str) -> None:
        """Begin capturing ``phase`` (no-op if a capture is already live)."""
        if self._active is not None:
            return
        self._active = cProfile.Profile()
        self._active_phase = phase
        self._active.enable()

    def stop(self, phase: str) -> None:
        """End the capture for ``phase`` and fold it into the aggregate."""
        profile = self._active
        if profile is None or self._active_phase != phase:
            return
        profile.disable()
        self._active = None
        self._active_phase = None
        stats = pstats.Stats(profile)
        bucket = self._phase_stats.setdefault(phase, {})
        for (filename, line, func), row in stats.stats.items():
            _cc, ncalls, tottime, cumtime, _callers = row
            key = "%s:%d(%s)" % (os.path.basename(filename), line, func)
            entry = bucket.setdefault(key, [0, 0.0, 0.0])
            entry[0] += ncalls
            entry[1] += tottime
            entry[2] += cumtime

    # -- merge / export -------------------------------------------------------
    def export(self) -> Dict[str, Dict[str, List[float]]]:
        """Picklable aggregate for shipping across the process pool."""
        return {phase: {key: list(row) for key, row in bucket.items()}
                for phase, bucket in self._phase_stats.items()}

    def merge(self, exported: Dict[str, Dict[str, List[float]]]) -> None:
        """Fold a worker's :meth:`export` into this aggregate (additive)."""
        for phase, bucket in exported.items():
            target = self._phase_stats.setdefault(phase, {})
            for key, row in bucket.items():
                entry = target.setdefault(key, [0, 0.0, 0.0])
                entry[0] += row[0]
                entry[1] += row[1]
                entry[2] += row[2]

    # -- reporting ------------------------------------------------------------
    def report(self, top_n: Optional[int] = None) -> Dict[str, Any]:
        """The run-report ``profile`` section (deterministically ordered)."""
        limit = self.top_n if top_n is None else top_n
        phases: Dict[str, Any] = {}
        for phase in sorted(self._phase_stats):
            bucket = self._phase_stats[phase]
            ranked = sorted(bucket.items(),
                            key=lambda item: (-item[1][1], item[0]))
            phases[phase] = {
                "functions_profiled": len(bucket),
                "calls": int(sum(row[0] for row in bucket.values())),
                "time_s": sum(row[1] for row in bucket.values()),
                "hotspots": [
                    {"function": key,
                     "ncalls": int(row[0]),
                     "tottime_s": row[1],
                     "cumtime_s": row[2]}
                    for key, row in ranked[:limit]
                ],
            }
        return {"top_n": limit, "phases": phases}
