"""Message-level flight recorder: every transmission as a structured event.

The paper's headline results are *communication* theorems (Table 1,
Theorem 11 count messages and rounds), but span-level telemetry only sees
per-phase aggregates.  The flight recorder closes that gap: the network
simulators emit one structured :class:`FlightEvent` per unicast copy at
each lifecycle step —

* ``send`` — a copy charged to :class:`~repro.network.metrics.NetworkMetrics`
  (broadcasts appear as their ``n - 1`` expanded copies, exactly the unit
  Theorem 11 counts);
* ``deliver`` — the copy landed in the recipient's inbox;
* ``drop`` — the copy was lost (fault-plan drop, or declared withheld
  after the retry budget under :class:`~repro.network.asynchronous.TimeoutNetwork`);
* ``late`` — the copy missed the base barrier and entered the grace
  sub-rounds;
* ``retransmit`` — a grace sub-round re-send (also charged to the
  metrics, so ``send + retransmit`` events equal
  ``point_to_point_messages`` exactly);
* ``recovery`` — a retransmitted copy arrived inside its grace window.

Retry-path events carry ``link`` — the sequence number of the original
``send`` event for the same copy — so a retransmission chain can be
replayed end to end.

Events are held in a bounded ring buffer (:class:`FlightRecorder`); the
per-type/per-kind tallies keep counting past eviction, so summaries stay
exact even when the buffer wraps.  The recorder is opt-in and follows the
observability contract: the module-level :data:`NULL_FLIGHT` no-op is
installed on every network by default, every emission is guarded by
``flight.enabled``, and recording never perturbs counted totals.

Two exporters leave the process:

* :func:`FlightRecorder.dump` — a JSON document with the summary and the
  retained events; :attr:`FlightRecorder.dump_on_abort` makes the
  protocol write it automatically when a run voids or quarantines a task
  (the post-mortem for degraded runs);
* :func:`to_chrome_trace` — a Chrome Trace Event document (loadable in
  Perfetto / ``chrome://tracing``) merging the message events with the
  span timeline: spans render as duration events on the protocol track,
  messages as instants on per-agent tracks.

See ``docs/OBSERVABILITY.md`` ("Flight recorder").
"""

from __future__ import annotations

import json
import time
from collections import Counter, deque
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, Iterable,
                    Iterator, List, Optional, Tuple)

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from .spans import SpanRecorder

#: Event types, in message-lifecycle order.
EVENT_SEND = "send"
EVENT_DELIVER = "deliver"
EVENT_DROP = "drop"
EVENT_LATE = "late"
EVENT_RETRANSMIT = "retransmit"
EVENT_RECOVERY = "recovery"

#: The event types that each correspond to exactly one point-to-point
#: message charged to :class:`~repro.network.metrics.NetworkMetrics`
#: (the unit of Theorem 11): original sends plus grace-round re-sends.
MESSAGE_EVENT_TYPES = (EVENT_SEND, EVENT_RETRANSMIT)

#: Default ring-buffer capacity (events, not messages; a send that is
#: delivered produces two events).
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class FlightEvent:
    """One message-lifecycle event.

    ``seq`` is the recorder-assigned sequence number (monotone across the
    whole execution, merge included); ``link`` points at the ``seq`` of
    the original ``send`` for retry-path events; ``span_id`` is the span
    open when the event fired (``None`` without a linked recorder).
    """

    seq: int
    type: str
    round: int
    kind: str
    sender: int
    receiver: Optional[int]
    field_elements: int
    task: Optional[int]
    span_id: Optional[int]
    timestamp: float
    attempt: int = 0
    link: Optional[int] = None
    detail: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly encoding (stable keys; see the dump schema)."""
        return {
            "seq": self.seq,
            "type": self.type,
            "round": self.round,
            "kind": self.kind,
            "sender": self.sender,
            "receiver": self.receiver,
            "field_elements": self.field_elements,
            "task": self.task,
            "span_id": self.span_id,
            "timestamp_s": self.timestamp,
            "attempt": self.attempt,
            "link": self.link,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "FlightEvent":
        """Decode an event encoded by :meth:`to_dict` (round-trip)."""
        return cls(
            seq=document["seq"],
            type=document["type"],
            round=document["round"],
            kind=document["kind"],
            sender=document["sender"],
            receiver=document["receiver"],
            field_elements=document["field_elements"],
            task=document["task"],
            span_id=document["span_id"],
            timestamp=document["timestamp_s"],
            attempt=document.get("attempt", 0),
            link=document.get("link"),
            detail=document.get("detail"),
        )


class FlightRecorder:
    """Bounded ring buffer of :class:`FlightEvent` records.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are evicted first.  The
        per-type/per-kind tallies (and ``events_recorded``) keep counting
        past eviction so :meth:`summary` stays exact.
    clock:
        Timestamp source used when no :attr:`span_source` is linked.
    """

    #: Real recorders capture events; the null recorder advertises False
    #: so the network hot path can skip building payloads entirely.
    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if capacity < 1:
            raise ValueError("flight-recorder capacity must be positive")
        self.capacity = capacity
        self.clock = clock
        self.epoch = clock()
        self._events: Deque[FlightEvent] = deque(maxlen=capacity)
        self._seq = 0
        #: All-time tallies (never reduced by ring eviction).
        self.by_type: Counter = Counter()
        self.by_kind: Counter = Counter()
        #: Optional :class:`~repro.obs.spans.SpanRecorder` supplying the
        #: owning span id and a shared timestamp epoch.
        self.span_source: Optional["SpanRecorder"] = None
        #: Task attribution installed by the protocol drivers around each
        #: auction (``None`` during run-level phases such as payments).
        self.current_task: Optional[int] = None
        #: When set, the protocol dumps the buffer to this path on abort
        #: or quarantine (the degraded-run post-mortem).
        self.dump_on_abort: Optional[str] = None
        #: Paths written by :meth:`abort_dump`, in order.
        self.abort_dumps: List[str] = []

    # -- recording ------------------------------------------------------------
    def record(self, event_type: str, *, round_index: int, kind: str,
               sender: int, receiver: Optional[int],
               field_elements: int = 1, attempt: int = 0,
               link: Optional[int] = None,
               detail: Optional[str] = None) -> Optional[FlightEvent]:
        """Record one lifecycle event; returns it (for retry linking)."""
        source = self.span_source
        if source is not None and source.enabled:
            timestamp = source.clock() - source.epoch
            span_id = source._stack[-1] if source._stack else None
        else:
            timestamp = self.clock() - self.epoch
            span_id = None
        event = FlightEvent(
            seq=self._seq, type=event_type, round=round_index, kind=kind,
            sender=sender, receiver=receiver, field_elements=field_elements,
            task=self.current_task, span_id=span_id, timestamp=timestamp,
            attempt=attempt, link=link, detail=detail,
        )
        self._seq += 1
        self.by_type[event_type] += 1
        self.by_kind[kind] += 1
        self._events.append(event)
        return event

    def ingest(self, documents: Iterable[Dict[str, Any]],
               span_base: Optional[int] = None,
               span_parent: Optional[int] = None,
               time_offset: float = 0.0,
               source_summary: Optional[Dict[str, Any]] = None) -> None:
        """Merge events exported by another recorder (process-pool shards).

        Sequence numbers are reassigned into this recorder's space (with
        ``link`` pointers remapped by the same shift), span ids are
        shifted by ``span_base`` — matching the span graft performed by
        :func:`repro.parallel._graft_spans` — or re-parented to
        ``span_parent`` when the shard recorded none, and timestamps are
        rebased by ``time_offset``.

        ``source_summary`` (the source recorder's :meth:`summary`) keeps
        the tallies eviction-exact: when the source's ring evicted events
        before export, its all-time per-type/per-kind counts are adopted
        instead of re-counting only the retained documents.
        """
        base = self._seq
        highest = base
        for document in documents:
            span_id = document.get("span_id")
            if span_id is not None and span_base is not None:
                span_id = span_id + span_base
            elif span_id is None:
                span_id = span_parent
            link = document.get("link")
            event = FlightEvent(
                seq=base + document["seq"],
                type=document["type"],
                round=document["round"],
                kind=document["kind"],
                sender=document["sender"],
                receiver=document["receiver"],
                field_elements=document["field_elements"],
                task=document["task"],
                span_id=span_id,
                timestamp=document["timestamp_s"] + time_offset,
                attempt=document.get("attempt", 0),
                link=(base + link if link is not None else None),
                detail=document.get("detail"),
            )
            highest = max(highest, event.seq + 1)
            if source_summary is None:
                self.by_type[event.type] += 1
                self.by_kind[event.kind] += 1
            self._events.append(event)
        if source_summary is not None:
            for name, count in source_summary.get("by_type", {}).items():
                self.by_type[name] += count
            for name, count in source_summary.get("by_kind", {}).items():
                self.by_kind[name] += count
            self._seq = base + source_summary.get("events_recorded", 0)
        else:
            self._seq = highest

    # -- queries --------------------------------------------------------------
    @property
    def events(self) -> Tuple[FlightEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    @property
    def events_recorded(self) -> int:
        """All-time event count (retained plus evicted)."""
        return self._seq

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FlightEvent]:
        return iter(self._events)

    def message_events(self) -> List[FlightEvent]:
        """Retained events that each correspond to one counted message."""
        return [event for event in self._events
                if event.type in MESSAGE_EVENT_TYPES]

    def find(self, event_type: Optional[str] = None,
             kind: Optional[str] = None,
             task: Optional[int] = None) -> List[FlightEvent]:
        """Retained events filtered by type/kind/task."""
        return [event for event in self._events
                if (event_type is None or event.type == event_type)
                and (kind is None or event.kind == kind)
                and (task is None or event.task == task)]

    def summary(self) -> Dict[str, Any]:
        """The run-report ``flight_summary`` section (eviction-exact)."""
        return {
            "events_recorded": self._seq,
            "events_retained": len(self._events),
            "capacity": self.capacity,
            "messages": sum(self.by_type[t] for t in MESSAGE_EVENT_TYPES),
            "by_type": {name: self.by_type[name]
                        for name in sorted(self.by_type)},
            "by_kind": {name: self.by_kind[name]
                        for name in sorted(self.by_kind)},
        }

    # -- export ---------------------------------------------------------------
    def to_list(self) -> List[Dict[str, Any]]:
        """Retained events as JSON-friendly dicts, oldest first."""
        return [event.to_dict() for event in self._events]

    def dump_document(self, reason: Optional[str] = None) -> Dict[str, Any]:
        """The full dump: summary plus retained events."""
        return {
            "type": "dmw_flight_dump",
            "version": 1,
            "reason": reason,
            "summary": self.summary(),
            "events": self.to_list(),
        }

    def dump(self, path: str, reason: Optional[str] = None) -> None:
        """Serialize :meth:`dump_document` to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.dump_document(reason=reason), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")

    def abort_dump(self, reason: str) -> Optional[str]:
        """Write the on-abort dump if a path was configured."""
        if not self.dump_on_abort:
            return None
        self.dump(self.dump_on_abort, reason=reason)
        self.abort_dumps.append(self.dump_on_abort)
        return self.dump_on_abort


class _NullFlightRecorder(FlightRecorder):
    """Discards everything; the default when flight recording is off."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1, clock=lambda: 0.0)

    def record(self, event_type: str, *, round_index: int, kind: str,
               sender: int, receiver: Optional[int],
               field_elements: int = 1, attempt: int = 0,
               link: Optional[int] = None,
               detail: Optional[str] = None) -> Optional[FlightEvent]:
        return None


#: The process-wide disabled flight recorder (mirrors ``NULL_RECORDER``).
NULL_FLIGHT = _NullFlightRecorder()


# ---------------------------------------------------------------------------
# Chrome Trace Event (Perfetto) exporter
# ---------------------------------------------------------------------------

#: Chrome-trace track (tid) of the protocol span timeline; agent ``i``'s
#: message track is ``i + _AGENT_TRACK_BASE``.
_PROTOCOL_TRACK = 0
_AGENT_TRACK_BASE = 1


def to_chrome_trace(recorder: Optional[Any] = None,
                    flight: Optional[FlightRecorder] = None,
                    label: str = "dmw") -> Dict[str, Any]:
    """Build a Chrome Trace Event document (Perfetto-loadable).

    Spans from ``recorder`` become complete (``ph: "X"``) events on the
    protocol track; flight-recorder message events become instant
    (``ph: "i"``) events on the *sender's* per-agent track.  Events whose
    type is in :data:`MESSAGE_EVENT_TYPES` carry ``cat: "message"`` —
    exactly one such event exists per point-to-point message counted by
    :class:`~repro.network.metrics.NetworkMetrics`; delivery-side events
    (deliver/drop/late/recovery) carry ``cat: "delivery"``.

    Timestamps are microseconds from the recorder epoch, per the Trace
    Event format.  The document is ``{"traceEvents": [...], ...}`` —
    the JSON-object flavour both Perfetto and ``chrome://tracing``
    accept.
    """
    events: List[Dict[str, Any]] = []
    events.append({"ph": "M", "pid": 0, "tid": _PROTOCOL_TRACK,
                   "name": "process_name", "args": {"name": label}})
    events.append({"ph": "M", "pid": 0, "tid": _PROTOCOL_TRACK,
                   "name": "thread_name", "args": {"name": "protocol"}})
    named_tracks = set()
    if recorder is not None:
        for span in recorder:
            events.append({
                "ph": "X", "pid": 0, "tid": _PROTOCOL_TRACK,
                "name": span.name, "cat": "span,%s" % span.kind,
                "ts": span.start * 1e6,
                "dur": max((span.end - span.start) * 1e6, 0.0),
                "args": {"span_id": span.span_id, "task": span.task,
                         "operations": dict(span.operations),
                         "network": dict(span.network)},
            })
        for span_event in recorder.events:
            events.append({
                "ph": "i", "pid": 0, "tid": _PROTOCOL_TRACK,
                "name": span_event.name, "cat": "event", "s": "t",
                "ts": span_event.timestamp * 1e6,
                "args": dict(span_event.attributes),
            })
    if flight is not None:
        for event in flight:
            track = event.sender + _AGENT_TRACK_BASE
            if track not in named_tracks:
                named_tracks.add(track)
                events.append({
                    "ph": "M", "pid": 0, "tid": track,
                    "name": "thread_name",
                    "args": {"name": "agent %d" % event.sender},
                })
            category = ("message"
                        if event.type in MESSAGE_EVENT_TYPES else "delivery")
            events.append({
                "ph": "i", "pid": 0, "tid": track,
                "name": "%s %s" % (event.type, event.kind),
                "cat": category, "s": "t",
                "ts": event.timestamp * 1e6,
                "args": {
                    "seq": event.seq, "type": event.type,
                    "kind": event.kind, "round": event.round,
                    "sender": event.sender, "receiver": event.receiver,
                    "field_elements": event.field_elements,
                    "task": event.task, "span_id": event.span_id,
                    "attempt": event.attempt, "link": event.link,
                },
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs.flight"},
    }


def write_chrome_trace(path: str, recorder: Optional[Any] = None,
                       flight: Optional[FlightRecorder] = None,
                       label: str = "dmw") -> None:
    """Serialize :func:`to_chrome_trace` to ``path``."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(recorder=recorder, flight=flight,
                                  label=label), handle)
        handle.write("\n")
