"""repro.obs — unified observability for DMW executions.

Three layers (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.spans` — timestamped span tracing of protocol runs
  (``run -> task -> phase``) with per-span wall-clock, counted-operation,
  and network-delta attribution;
* :mod:`repro.obs.metrics` — a labeled counter/gauge/histogram registry
  unifying per-agent operation counters, network metrics, complaint and
  abort counts, verification-check stats, and fastexp cache statistics;
* :mod:`repro.obs.export` — the JSON run-report artifact (stable,
  versioned schema with built-in validation), the Prometheus text
  exposition (with a round-trip parser), and human-readable timelines.

The layer is strictly *read-only* with respect to the counted model:
recording spans or building registries never changes an agent's
:class:`~repro.crypto.modular.OperationCounter` totals, transcripts, or
outcomes, and the disabled path (:data:`~repro.obs.spans.NULL_RECORDER`,
the default) adds no per-event allocation.
"""

from .export import (
    PrometheusParseError,
    ReportSchemaError,
    parse_prometheus,
    run_report,
    to_prometheus,
    validate_run_report,
    write_run_report,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_for_run,
)
from .spans import (
    NULL_RECORDER,
    PAYMENTS_PHASE,
    PHASES,
    Span,
    SpanEvent,
    SpanRecorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "PAYMENTS_PHASE",
    "PHASES",
    "PrometheusParseError",
    "ReportSchemaError",
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "parse_prometheus",
    "registry_for_run",
    "run_report",
    "to_prometheus",
    "validate_run_report",
    "write_run_report",
]
