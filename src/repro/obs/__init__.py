"""repro.obs — unified observability for DMW executions.

Six layers (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.spans` — timestamped span tracing of protocol runs
  (``run -> task -> phase``) with per-span wall-clock, counted-operation,
  and network-delta attribution;
* :mod:`repro.obs.metrics` — a labeled counter/gauge/histogram registry
  unifying per-agent operation counters, network metrics, complaint and
  abort counts, verification-check stats, and fastexp cache statistics;
* :mod:`repro.obs.flight` — the message-level flight recorder: one
  structured event per unicast copy at each lifecycle step
  (send/deliver/drop/retransmit/recovery) in a bounded ring buffer,
  with dump-on-abort and a Chrome-trace (Perfetto-loadable) exporter;
* :mod:`repro.obs.history` — the append-only run-history store (JSONL
  keyed by config fingerprint) with diff/trend analytics against the
  Theorem 11/12 closed forms;
* :mod:`repro.obs.profile` — opt-in per-phase cProfile capture with
  top-N hotspot attribution, merged across process-pool workers;
* :mod:`repro.obs.export` — the JSON run-report artifact (stable,
  versioned schema with built-in validation), the Prometheus text
  exposition (with a round-trip parser), and human-readable timelines.

The layer is strictly *read-only* with respect to the counted model:
recording spans or flight events never changes an agent's
:class:`~repro.crypto.modular.OperationCounter` totals, transcripts, or
outcomes, and the disabled paths (:data:`~repro.obs.spans.NULL_RECORDER`
and :data:`~repro.obs.flight.NULL_FLIGHT`, the defaults) add no
per-event allocation.
"""

from .export import (
    PrometheusParseError,
    ReportSchemaError,
    parse_prometheus,
    provenance_summary,
    run_report,
    to_prometheus,
    validate_run_report,
    write_run_report,
)
from .flight import (
    NULL_FLIGHT,
    FlightEvent,
    FlightRecorder,
    to_chrome_trace,
    write_chrome_trace,
)
from .history import (
    HistoryStore,
    config_fingerprint,
    diff_entries,
    entries_from_bench_dir,
    entry_from_report,
    theorem11_message_bounds,
    trend_rows,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_fastexp_metrics,
    registry_for_run,
)
from .profile import PhaseProfiler
from .spans import (
    NULL_RECORDER,
    PAYMENTS_PHASE,
    PHASES,
    Span,
    SpanEvent,
    SpanRecorder,
)

__all__ = [
    "Counter",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistoryStore",
    "MetricsRegistry",
    "NULL_FLIGHT",
    "NULL_RECORDER",
    "PAYMENTS_PHASE",
    "PHASES",
    "PhaseProfiler",
    "PrometheusParseError",
    "ReportSchemaError",
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "config_fingerprint",
    "diff_entries",
    "entries_from_bench_dir",
    "entry_from_report",
    "parse_prometheus",
    "provenance_summary",
    "bind_fastexp_metrics",
    "registry_for_run",
    "run_report",
    "theorem11_message_bounds",
    "to_chrome_trace",
    "to_prometheus",
    "trend_rows",
    "validate_run_report",
    "write_chrome_trace",
    "write_run_report",
]
