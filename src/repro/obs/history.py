"""Persistent run-history analytics: append-only JSONL across executions.

Every run report (and every committed ``BENCH_*.json`` record) dies with
its process unless something persists it; the history store is that
something.  It is an append-only JSONL file of ``dmw_history_entry``
documents, each keyed by a *config fingerprint* — a stable hash over the
run's identifying configuration (``n``, ``m``, seed, backend,
parallelism, mechanism) — so runs of the same configuration line up into
a trajectory and runs of different configurations never get compared by
accident.

Entry schema (one JSON object per line)::

    {"type": "dmw_history_entry", "version": 1,
     "recorded_at": <unix seconds>, "source": "run_report" | "bench",
     "fingerprint": <12-hex sha256 prefix of the sorted config>,
     "config": {"num_agents", "num_tasks", "seed", "backend",
                "parallel", "workers", "mechanism", ...},
     "wall_clock_s": float | null,          # run-span duration / bench best
     "calibration_s": float | null,         # machine-speed yardstick
     "counters": {...operation totals...} | null,
     "network": {...NetworkMetrics.as_dict()...} | null,
     "outcome": {"completed", "schedule", "payments", "degraded",
                 "quarantined_tasks"} | null,
     "provenance": {...run-report provenance...} | null}

Three analytics run over the store (surfaced by ``dmw history``):

* **diff** — compare two entries' operation counters, network totals,
  and outcome.  DMW is deterministic given its config, and the
  process-pool driver is bit-identical to the sequential one, so a
  sequential run and a ``--parallel --workers 4`` run of the same
  configuration must diff *clean*; wall-clock and provenance differences
  are reported informationally, never as divergence.
* **trend** — per-fingerprint trajectory of wall-clock and counters,
  with anomaly flags: message totals outside the Theorem 11 closed-form
  band for ``(n, m)`` (see :func:`theorem11_message_bounds`), rounds
  different from the drivers' known round counts, and counter drift
  *within* a fingerprint (same config must reproduce identical counted
  work — Theorem 12's schedule is deterministic).
* **ingest** — pull the committed benchmark records into the store so
  the trajectory is non-empty from day one
  (:func:`entries_from_bench_dir`); ``benchmarks/check_regression.py
  --only history`` gates calibration-normalised wall-clock against the
  stored trend.

See ``docs/OBSERVABILITY.md`` ("Run history").
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import time

try:  # POSIX advisory locking; absent on some platforms (e.g. Windows).
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Entry schema version.
ENTRY_VERSION = 1


def config_fingerprint(config: Dict[str, Any]) -> str:
    """Stable 12-hex fingerprint of a configuration mapping."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def theorem11_message_bounds(num_agents: int, num_tasks: int
                             ) -> Tuple[int, int]:
    """Closed-form message band for one honest DMW run (Theorem 11).

    Fixed traffic per run: ``m * n * (n - 1)`` share bundles (private
    unicasts), three published rounds per auction (commitments,
    lambda_psi, second_price) at ``n`` expanded copies per broadcast
    (``n - 1`` agents plus the payment-infrastructure endpoint), and
    ``n`` payment claims.  Variable traffic: the disclosure round
    publishes one ``f_disclosure`` row per discloser and one
    ``winner_claim`` per claimant — at least one of each per auction,
    at most ``n`` of each, hence the band.  Both in-process drivers and
    the process pool land inside it; anything outside is an anomaly.
    """
    n, m = num_agents, num_tasks
    fixed = m * n * (n - 1) + 3 * m * n * n + n
    lower = fixed + 2 * m * n
    upper = fixed + 2 * m * n * n
    return lower, upper


class HistoryStore:
    """Append-only JSONL store of ``dmw_history_entry`` documents."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, entry: Dict[str, Any]) -> int:
        """Append one entry; returns its 1-based index in the store.

        Concurrency-safe: the entry is serialized into one buffer and
        written with a single ``os.write`` on an ``O_APPEND`` descriptor
        while holding an exclusive ``fcntl.flock`` on the store, so
        concurrent appenders (``dmw run --history`` from several
        processes, future service workers) can never interleave partial
        JSONL lines; the returned index is counted under the same lock.
        """
        if entry.get("type") != "dmw_history_entry":
            raise ValueError("not a dmw_history_entry document")
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        data = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                with os.fdopen(os.dup(fd), "rb") as snapshot:
                    index = sum(1 for line in snapshot if line.strip())
                os.write(fd, data)
            finally:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        return index + 1

    def extend(self, entries: Iterable[Dict[str, Any]]) -> int:
        """Append several entries; returns how many were written."""
        count = 0
        for entry in entries:
            self.append(entry)
            count += 1
        return count

    def load(self) -> List[Dict[str, Any]]:
        """Every entry, in append order (empty when the file is absent)."""
        if not os.path.exists(self.path):
            return []
        entries: List[Dict[str, Any]] = []
        with open(self.path) as handle:
            for line_number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                except ValueError:
                    raise ValueError(
                        "%s:%d: malformed history line"
                        % (self.path, line_number)) from None
                entries.append(document)
        return entries

    def entry(self, index: int) -> Dict[str, Any]:
        """The 1-based ``index``-th entry (matching ``history list``)."""
        entries = self.load()
        if not 1 <= index <= len(entries):
            raise IndexError(
                "history has %d entries; no entry %d"
                % (len(entries), index))
        return entries[index - 1]


# ---------------------------------------------------------------------------
# Entry builders
# ---------------------------------------------------------------------------

def make_entry(config: Dict[str, Any], *,
               source: str,
               wall_clock_s: Optional[float] = None,
               calibration_s: Optional[float] = None,
               counters: Optional[Dict[str, int]] = None,
               network: Optional[Dict[str, int]] = None,
               outcome: Optional[Dict[str, Any]] = None,
               provenance: Optional[Dict[str, Any]] = None,
               recorded_at: Optional[float] = None) -> Dict[str, Any]:
    """Assemble one history entry with its fingerprint stamped."""
    return {
        "type": "dmw_history_entry",
        "version": ENTRY_VERSION,
        "recorded_at": time.time() if recorded_at is None else recorded_at,
        "source": source,
        "fingerprint": config_fingerprint(config),
        "config": dict(config),
        "wall_clock_s": wall_clock_s,
        "calibration_s": calibration_s,
        "counters": counters,
        "network": network,
        "outcome": outcome,
        "provenance": provenance,
    }


def entry_from_report(document: Dict[str, Any],
                      config: Optional[Dict[str, Any]] = None,
                      recorded_at: Optional[float] = None
                      ) -> Dict[str, Any]:
    """Build a history entry from a run-report document.

    ``config`` supplies identifying fields the report itself cannot know
    (the RNG seed, the driver flags); report-derivable fields fill the
    gaps.  The wall clock is the run span's duration when spans were
    recorded.
    """
    params = document.get("params") or {}
    derived: Dict[str, Any] = {
        "mechanism": "dmw",
        "num_agents": params.get("num_agents"),
        "num_tasks": params.get("num_tasks"),
        "backend": params.get("arithmetic_backend"),
        "seed": None,
        "parallel": bool(document.get("parallelism")),
        "workers": (document.get("parallelism") or {}).get("workers"),
    }
    if config:
        derived.update(config)
    wall_clock_s: Optional[float] = None
    for span in document.get("spans") or []:
        if span.get("kind") == "run":
            wall_clock_s = span.get("duration_s")
            break
    totals = document.get("totals") or {}
    resilience = document.get("resilience") or {}
    outcome = {
        "completed": document.get("completed"),
        "schedule": document.get("schedule"),
        "payments": document.get("payments"),
        "degraded": resilience.get("degraded", False),
        "quarantined_tasks": resilience.get("quarantined_tasks", []),
    }
    return make_entry(
        derived, source="run_report", wall_clock_s=wall_clock_s,
        counters=totals.get("operations"), network=totals.get("network"),
        outcome=outcome, provenance=document.get("provenance"),
        recorded_at=recorded_at,
    )


def entries_from_bench_dir(results_dir: str,
                           recorded_at: Optional[float] = None
                           ) -> List[Dict[str, Any]]:
    """History entries for every committed ``BENCH_*.json`` record.

    The calibration bench's measurement becomes each entry's
    ``calibration_s`` (the machine-speed yardstick the regression gate
    normalises by); the calibration record itself is not ingested.
    """
    calibration_s: Optional[float] = None
    calibration_path = os.path.join(results_dir,
                                    "BENCH_scaling_calibration.json")
    if os.path.exists(calibration_path):
        with open(calibration_path) as handle:
            for record in json.load(handle):
                if record.get("wall_clock_s") is not None:
                    calibration_s = record["wall_clock_s"]
    entries: List[Dict[str, Any]] = []
    for path in sorted(glob.glob(os.path.join(results_dir,
                                              "BENCH_*.json"))):
        if os.path.basename(path) == "BENCH_scaling_calibration.json":
            continue
        with open(path) as handle:
            records = json.load(handle)
        for record in records:
            params = record.get("params") or {}
            config = {"mechanism": "dmw", "bench": record.get("bench")}
            config.update(params)
            # Normalise the bench parameter names onto the run-config
            # vocabulary so Theorem 11 anomaly checks apply when the
            # bench measured a full DMW run.
            if "n" in params:
                config["num_agents"] = params["n"]
            if "m" in params:
                config["num_tasks"] = params["m"]
            entries.append(make_entry(
                config, source="bench",
                wall_clock_s=record.get("wall_clock_s"),
                calibration_s=calibration_s,
                counters=record.get("counters"),
                network=None, outcome=None, provenance=None,
                recorded_at=recorded_at,
            ))
    return entries


# ---------------------------------------------------------------------------
# Analytics: diff and trend
# ---------------------------------------------------------------------------

def _dict_divergences(section: str, a: Optional[Dict[str, Any]],
                      b: Optional[Dict[str, Any]]) -> List[str]:
    """Per-key exact comparison of two mappings (missing keys are zero)."""
    lines: List[str] = []
    if a is None or b is None:
        if (a or None) != (b or None):
            lines.append("%s: present in one entry only" % section)
        return lines
    for key in sorted(set(a) | set(b)):
        left, right = a.get(key, 0), b.get(key, 0)
        if left != right:
            lines.append("%s.%s: %r != %r" % (section, key, left, right))
    return lines


def diff_entries(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Compare two history entries; deterministic fields must match.

    Returns ``{"clean": bool, "divergences": [...],
    "informational": [...]}``.  Operation counters, network totals, and
    the outcome (completion, schedule, payments, quarantines) are
    *divergences* when different — a deterministic mechanism run twice
    on one configuration, sequentially or through the process pool, must
    reproduce them exactly.  Wall-clock, provenance, and config/
    fingerprint differences are *informational*: expected to vary across
    machines, commits, and drivers.
    """
    divergences: List[str] = []
    informational: List[str] = []
    if a.get("fingerprint") != b.get("fingerprint"):
        informational.append(
            "fingerprint: %s != %s (different configurations)"
            % (a.get("fingerprint"), b.get("fingerprint")))
    for key in sorted(set(a.get("config") or {}) | set(b.get("config")
                                                       or {})):
        left = (a.get("config") or {}).get(key)
        right = (b.get("config") or {}).get(key)
        if left != right:
            informational.append("config.%s: %r != %r" % (key, left, right))
    divergences.extend(_dict_divergences("counters", a.get("counters"),
                                         b.get("counters")))
    divergences.extend(_dict_divergences("network", a.get("network"),
                                         b.get("network")))
    outcome_a, outcome_b = a.get("outcome"), b.get("outcome")
    if (outcome_a is None) != (outcome_b is None):
        divergences.append("outcome: present in one entry only")
    elif outcome_a is not None and outcome_b is not None:
        for key in ("completed", "schedule", "payments", "degraded",
                    "quarantined_tasks"):
            if outcome_a.get(key) != outcome_b.get(key):
                divergences.append("outcome.%s: %r != %r"
                                   % (key, outcome_a.get(key),
                                      outcome_b.get(key)))
    wall_a, wall_b = a.get("wall_clock_s"), b.get("wall_clock_s")
    if wall_a is not None and wall_b is not None:
        delta = wall_b - wall_a
        ratio = (wall_b / wall_a) if wall_a else float("inf")
        informational.append(
            "wall_clock_s: %.6f -> %.6f (%+.6f, x%.3f)"
            % (wall_a, wall_b, delta, ratio))
    prov_a = (a.get("provenance") or {})
    prov_b = (b.get("provenance") or {})
    for key in sorted(set(prov_a) | set(prov_b)):
        if prov_a.get(key) != prov_b.get(key):
            informational.append(
                "provenance.%s: %r != %r"
                % (key, prov_a.get(key), prov_b.get(key)))
    return {"clean": not divergences, "divergences": divergences,
            "informational": informational}


def entry_anomalies(entry: Dict[str, Any]) -> List[str]:
    """Theorem 11/12 closed-form checks for one entry.

    Applied when the entry carries enough to check: a network section
    plus ``num_agents``/``num_tasks`` in its config.
    """
    anomalies: List[str] = []
    config = entry.get("config") or {}
    network = entry.get("network") or {}
    n, m = config.get("num_agents"), config.get("num_tasks")
    if not network or not isinstance(n, int) or not isinstance(m, int):
        return anomalies
    messages = network.get("point_to_point_messages")
    if messages is not None:
        lower, upper = theorem11_message_bounds(n, m)
        if not lower <= messages <= upper:
            anomalies.append(
                "messages %d outside Theorem 11 band [%d, %d] for "
                "n=%d m=%d" % (messages, lower, upper, n, m))
    rounds = network.get("rounds")
    if rounds is not None:
        # Sequential and pool drivers: 4 rounds per auction + payments
        # (4m + 1); the phase-barrier driver compresses to 5.  Complaint
        # rounds only ever add, at most 3 per auction.
        if rounds < 5:
            anomalies.append(
                "rounds %d below the 5-round protocol minimum" % rounds)
        if rounds > 7 * m + 1:
            anomalies.append(
                "rounds %d above the complaint-inflated ceiling %d"
                % (rounds, 7 * m + 1))
    return anomalies


def trend_rows(entries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-fingerprint trajectories with anomaly flags.

    Rows keep store order within each fingerprint.  Beyond the per-entry
    Theorem 11 checks, counter drift *within* a fingerprint is flagged:
    one configuration must reproduce identical counted work on every
    run (the deterministic Theorem 12 schedule).
    """
    by_fingerprint: Dict[str, List[Tuple[int, Dict[str, Any]]]] = {}
    for index, entry in enumerate(entries, 1):
        by_fingerprint.setdefault(entry.get("fingerprint", "?"),
                                  []).append((index, entry))
    rows: List[Dict[str, Any]] = []
    for fingerprint in sorted(by_fingerprint):
        group = by_fingerprint[fingerprint]
        baseline_counters: Optional[Dict[str, Any]] = None
        for index, entry in group:
            anomalies = entry_anomalies(entry)
            counters = entry.get("counters")
            if counters:
                if baseline_counters is None:
                    baseline_counters = counters
                elif counters != baseline_counters:
                    anomalies.append(
                        "counter drift within fingerprint %s"
                        % fingerprint)
            wall = entry.get("wall_clock_s")
            calibration = entry.get("calibration_s")
            rows.append({
                "index": index,
                "fingerprint": fingerprint,
                "source": entry.get("source"),
                "config": entry.get("config") or {},
                "wall_clock_s": wall,
                "normalized": (wall / calibration
                               if wall is not None and calibration
                               else None),
                "messages": (entry.get("network")
                             or {}).get("point_to_point_messages"),
                "anomalies": anomalies,
            })
    return rows
