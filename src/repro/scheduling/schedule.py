"""Schedules: partitions of the task set over agents (paper §2.1).

A schedule ``S`` partitions task indices into disjoint sets ``S_i``; the
objective the paper targets is the makespan ``C_max = max_i sum_{j in S_i}
t_i^j`` while MinWork actually minimizes the *total work* ``sum_i sum_{j in
S_i} t_i^j`` (which makes it an n-approximation of the makespan — an
experiment in :mod:`repro.analysis.approximation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .problem import SchedulingProblem


class Schedule:
    """An assignment of every task to exactly one agent.

    Parameters
    ----------
    assignment:
        ``assignment[j]`` is the agent index that task ``j`` is allocated
        to.  Every task must be assigned (MinWork always produces a complete
        assignment).
    num_agents:
        Number of agents ``n`` (agents may receive no tasks).
    """

    def __init__(self, assignment: Sequence[int], num_agents: int) -> None:
        if num_agents < 1:
            raise ValueError("need at least one agent")
        for j, agent in enumerate(assignment):
            if not 0 <= agent < num_agents:
                raise ValueError(
                    "task %d assigned to invalid agent %d" % (j, agent)
                )
        self._assignment = tuple(assignment)
        self._num_agents = num_agents

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_partition(cls, partition: Sequence[Iterable[int]],
                       num_tasks: int) -> "Schedule":
        """Build from the paper's partition form ``{S_1, ..., S_n}``."""
        assignment = [-1] * num_tasks
        for agent, tasks in enumerate(partition):
            for task in tasks:
                if not 0 <= task < num_tasks:
                    raise ValueError("task index %d out of range" % task)
                if assignment[task] != -1:
                    raise ValueError("task %d assigned twice" % task)
                assignment[task] = agent
        if any(agent == -1 for agent in assignment):
            missing = [j for j, a in enumerate(assignment) if a == -1]
            raise ValueError("tasks %s unassigned" % missing)
        return cls(assignment, len(partition))

    # -- queries --------------------------------------------------------------
    @property
    def assignment(self) -> Tuple[int, ...]:
        return self._assignment

    @property
    def num_agents(self) -> int:
        return self._num_agents

    @property
    def num_tasks(self) -> int:
        return len(self._assignment)

    def agent_of(self, task: int) -> int:
        """Return the agent that task ``task`` is allocated to."""
        return self._assignment[task]

    def tasks_of(self, agent: int) -> Tuple[int, ...]:
        """Return ``S_agent``, the tasks allocated to ``agent``."""
        return tuple(j for j, a in enumerate(self._assignment) if a == agent)

    def partition(self) -> List[Tuple[int, ...]]:
        """Return the paper's partition form ``[S_1, ..., S_n]``."""
        return [self.tasks_of(agent) for agent in range(self._num_agents)]

    # -- objectives -------------------------------------------------------------
    def completion_time(self, agent: int, problem: SchedulingProblem) -> float:
        """Return ``sum_{j in S_agent} t_agent^j``."""
        return sum(problem.time(agent, j) for j in self.tasks_of(agent))

    def makespan(self, problem: SchedulingProblem) -> float:
        """Return ``C_max = max_i completion_time(i)``."""
        return max(self.completion_time(agent, problem)
                   for agent in range(self._num_agents))

    def total_work(self, problem: SchedulingProblem) -> float:
        """Return ``sum_i completion_time(i)`` — MinWork's objective."""
        return sum(problem.time(self._assignment[j], j)
                   for j in range(self.num_tasks))

    def valuation(self, agent: int, problem: SchedulingProblem) -> float:
        """Return agent ``i``'s valuation ``V_i = -sum_{j in S_i} t_i^j``.

        ``problem`` must hold the agent's *true* times for this to be the
        paper's valuation (Definition 2, item 3).
        """
        return -self.completion_time(agent, problem)

    # -- dunder plumbing ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (self._assignment, self._num_agents) == (
            other._assignment, other._num_agents
        )

    def __hash__(self) -> int:
        return hash((self._assignment, self._num_agents))

    def __repr__(self) -> str:
        return "Schedule(%r, num_agents=%d)" % (
            list(self._assignment), self._num_agents
        )


class PartialSchedule:
    """An assignment covering only the *surviving* tasks of a degraded run.

    Graceful degradation (``docs/RESILIENCE.md``) quarantines the auction
    of a faulty task instead of voiding the whole execution; the outcome
    then allocates every completed task and leaves quarantined ones
    unassigned.  ``assignment[j]`` is the winning agent of task ``j``, or
    ``None`` when task ``j`` was quarantined.  The objective/valuation
    queries mirror :class:`Schedule` restricted to the assigned tasks
    (a quarantined task produces no work and no valuation for anyone).
    """

    def __init__(self, assignment: Sequence[Optional[int]],
                 num_agents: int) -> None:
        if num_agents < 1:
            raise ValueError("need at least one agent")
        for j, agent in enumerate(assignment):
            if agent is not None and not 0 <= agent < num_agents:
                raise ValueError(
                    "task %d assigned to invalid agent %r" % (j, agent)
                )
        self._assignment = tuple(assignment)
        self._num_agents = num_agents

    @classmethod
    def from_schedule(cls, schedule: Schedule,
                      completed_tasks: Iterable[int]) -> "PartialSchedule":
        """Restrict a full schedule to ``completed_tasks`` (rest ``None``)."""
        keep = set(completed_tasks)
        return cls([agent if task in keep else None
                    for task, agent in enumerate(schedule.assignment)],
                   schedule.num_agents)

    # -- queries --------------------------------------------------------------
    @property
    def assignment(self) -> Tuple[Optional[int], ...]:
        return self._assignment

    @property
    def num_agents(self) -> int:
        return self._num_agents

    @property
    def num_tasks(self) -> int:
        return len(self._assignment)

    @property
    def assigned_tasks(self) -> Tuple[int, ...]:
        """Tasks with a winner (the auctions that completed)."""
        return tuple(j for j, a in enumerate(self._assignment)
                     if a is not None)

    @property
    def unassigned_tasks(self) -> Tuple[int, ...]:
        """Quarantined tasks (no allocation executed)."""
        return tuple(j for j, a in enumerate(self._assignment) if a is None)

    def agent_of(self, task: int) -> Optional[int]:
        """The agent of ``task``, or ``None`` when quarantined."""
        return self._assignment[task]

    def tasks_of(self, agent: int) -> Tuple[int, ...]:
        """Return ``S_agent`` over the surviving tasks."""
        return tuple(j for j, a in enumerate(self._assignment) if a == agent)

    # -- objectives -------------------------------------------------------------
    def completion_time(self, agent: int, problem: SchedulingProblem) -> float:
        """``sum_{j in S_agent} t_agent^j`` over the surviving tasks."""
        return sum(problem.time(agent, j) for j in self.tasks_of(agent))

    def makespan(self, problem: SchedulingProblem) -> float:
        """``C_max`` over the surviving tasks."""
        return max(self.completion_time(agent, problem)
                   for agent in range(self._num_agents))

    def total_work(self, problem: SchedulingProblem) -> float:
        """Total work over the surviving tasks."""
        return sum(problem.time(self._assignment[j], j)
                   for j in self.assigned_tasks)

    def valuation(self, agent: int, problem: SchedulingProblem) -> float:
        """``V_i = -sum_{j in S_i} t_i^j`` over the surviving tasks."""
        return -self.completion_time(agent, problem)

    # -- dunder plumbing ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartialSchedule):
            return NotImplemented
        return (self._assignment, self._num_agents) == (
            other._assignment, other._num_agents
        )

    def __hash__(self) -> int:
        return hash((self._assignment, self._num_agents))

    def __repr__(self) -> str:
        return "PartialSchedule(%r, num_agents=%d)" % (
            list(self._assignment), self._num_agents
        )
