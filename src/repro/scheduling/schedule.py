"""Schedules: partitions of the task set over agents (paper §2.1).

A schedule ``S`` partitions task indices into disjoint sets ``S_i``; the
objective the paper targets is the makespan ``C_max = max_i sum_{j in S_i}
t_i^j`` while MinWork actually minimizes the *total work* ``sum_i sum_{j in
S_i} t_i^j`` (which makes it an n-approximation of the makespan — an
experiment in :mod:`repro.analysis.approximation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .problem import SchedulingProblem


class Schedule:
    """An assignment of every task to exactly one agent.

    Parameters
    ----------
    assignment:
        ``assignment[j]`` is the agent index that task ``j`` is allocated
        to.  Every task must be assigned (MinWork always produces a complete
        assignment).
    num_agents:
        Number of agents ``n`` (agents may receive no tasks).
    """

    def __init__(self, assignment: Sequence[int], num_agents: int) -> None:
        if num_agents < 1:
            raise ValueError("need at least one agent")
        for j, agent in enumerate(assignment):
            if not 0 <= agent < num_agents:
                raise ValueError(
                    "task %d assigned to invalid agent %d" % (j, agent)
                )
        self._assignment = tuple(assignment)
        self._num_agents = num_agents

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_partition(cls, partition: Sequence[Iterable[int]],
                       num_tasks: int) -> "Schedule":
        """Build from the paper's partition form ``{S_1, ..., S_n}``."""
        assignment = [-1] * num_tasks
        for agent, tasks in enumerate(partition):
            for task in tasks:
                if not 0 <= task < num_tasks:
                    raise ValueError("task index %d out of range" % task)
                if assignment[task] != -1:
                    raise ValueError("task %d assigned twice" % task)
                assignment[task] = agent
        if any(agent == -1 for agent in assignment):
            missing = [j for j, a in enumerate(assignment) if a == -1]
            raise ValueError("tasks %s unassigned" % missing)
        return cls(assignment, len(partition))

    # -- queries --------------------------------------------------------------
    @property
    def assignment(self) -> Tuple[int, ...]:
        return self._assignment

    @property
    def num_agents(self) -> int:
        return self._num_agents

    @property
    def num_tasks(self) -> int:
        return len(self._assignment)

    def agent_of(self, task: int) -> int:
        """Return the agent that task ``task`` is allocated to."""
        return self._assignment[task]

    def tasks_of(self, agent: int) -> Tuple[int, ...]:
        """Return ``S_agent``, the tasks allocated to ``agent``."""
        return tuple(j for j, a in enumerate(self._assignment) if a == agent)

    def partition(self) -> List[Tuple[int, ...]]:
        """Return the paper's partition form ``[S_1, ..., S_n]``."""
        return [self.tasks_of(agent) for agent in range(self._num_agents)]

    # -- objectives -------------------------------------------------------------
    def completion_time(self, agent: int, problem: SchedulingProblem) -> float:
        """Return ``sum_{j in S_agent} t_agent^j``."""
        return sum(problem.time(agent, j) for j in self.tasks_of(agent))

    def makespan(self, problem: SchedulingProblem) -> float:
        """Return ``C_max = max_i completion_time(i)``."""
        return max(self.completion_time(agent, problem)
                   for agent in range(self._num_agents))

    def total_work(self, problem: SchedulingProblem) -> float:
        """Return ``sum_i completion_time(i)`` — MinWork's objective."""
        return sum(problem.time(self._assignment[j], j)
                   for j in range(self.num_tasks))

    def valuation(self, agent: int, problem: SchedulingProblem) -> float:
        """Return agent ``i``'s valuation ``V_i = -sum_{j in S_i} t_i^j``.

        ``problem`` must hold the agent's *true* times for this to be the
        paper's valuation (Definition 2, item 3).
        """
        return -self.completion_time(agent, problem)

    # -- dunder plumbing ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (self._assignment, self._num_agents) == (
            other._assignment, other._num_agents
        )

    def __hash__(self) -> int:
        return hash((self._assignment, self._num_agents))

    def __repr__(self) -> str:
        return "Schedule(%r, num_agents=%d)" % (
            list(self._assignment), self._num_agents
        )
