"""Scheduling-on-unrelated-machines problem substrate (paper §2.1)."""

from .problem import SchedulingProblem, Task
from .schedule import Schedule
from . import workloads

__all__ = ["Schedule", "SchedulingProblem", "Task", "workloads"]
