"""Scheduling-on-unrelated-machines problem substrate (paper §2.1)."""

from .problem import SchedulingProblem, Task
from .schedule import PartialSchedule, Schedule
from . import workloads

__all__ = ["PartialSchedule", "Schedule", "SchedulingProblem", "Task",
           "workloads"]
