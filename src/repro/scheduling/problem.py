"""The scheduling-on-unrelated-machines problem model (paper §2.1).

An instance has ``m`` independent tasks ``T^1..T^m`` and ``n`` agents
(machines) ``A_1..A_n``.  Agent ``A_i`` needs ``t_i^j`` time units for task
``T^j``; the ``t_i^j`` are arbitrary ("unrelated"), though the classical
related-machines special case ``t_i^j = r^j / s_i`` is supported through
:meth:`SchedulingProblem.from_speeds`.

``t_i^j`` values are the agents' *private types*; mechanisms receive *bids*
``y_i^j`` that may differ from them.  Both are represented by the same
matrix type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Task:
    """A task: an index and a processing requirement in abstract units.

    The processing requirement ``r^j`` only matters for the related-machines
    constructor; unrelated instances are fully described by the time matrix.
    """

    index: int
    processing_requirement: float = 1.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("task index must be non-negative")
        if self.processing_requirement <= 0:
            raise ValueError("processing requirement must be positive")


class SchedulingProblem:
    """An instance of scheduling on unrelated machines.

    Parameters
    ----------
    times:
        Row-major matrix: ``times[i][j]`` is the time agent ``A_i`` needs
        for task ``T^j`` (the private true values ``t_i^j``).  All entries
        must be positive.
    tasks:
        Optional task metadata; defaults to unit-requirement tasks.
    """

    def __init__(self, times: Sequence[Sequence[float]],
                 tasks: Optional[Sequence[Task]] = None) -> None:
        if not times or not times[0]:
            raise ValueError("need at least one agent and one task")
        width = len(times[0])
        for row in times:
            if len(row) != width:
                raise ValueError("ragged time matrix")
            for value in row:
                if value <= 0:
                    raise ValueError("processing times must be positive")
        self._times = tuple(tuple(float(v) for v in row) for row in times)
        if tasks is None:
            tasks = [Task(index=j) for j in range(width)]
        if len(tasks) != width:
            raise ValueError(
                "got %d task records for %d columns" % (len(tasks), width)
            )
        self.tasks: Tuple[Task, ...] = tuple(tasks)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_speeds(cls, requirements: Sequence[float],
                    speeds: Sequence[Sequence[float]]) -> "SchedulingProblem":
        """Build an instance from requirements ``r^j`` and speeds ``s_i^j``.

        ``t_i^j = r^j / s_i^j`` per §2.1.  ``speeds[i][j]`` may also be a
        single per-agent scalar row of length 1, in which case the agent has
        one uniform speed (the related-machines model).
        """
        times = []
        for speed_row in speeds:
            if len(speed_row) == 1:
                speed_row = [speed_row[0]] * len(requirements)
            if len(speed_row) != len(requirements):
                raise ValueError("speed row length mismatch")
            if any(s <= 0 for s in speed_row):
                raise ValueError("speeds must be positive")
            times.append([r / s for r, s in zip(requirements, speed_row)])
        tasks = [Task(index=j, processing_requirement=r)
                 for j, r in enumerate(requirements)]
        return cls(times, tasks)

    # -- queries --------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return len(self._times)

    @property
    def num_tasks(self) -> int:
        return len(self._times[0])

    def time(self, agent: int, task: int) -> float:
        """Return ``t_agent^task``."""
        return self._times[agent][task]

    def agent_times(self, agent: int) -> Tuple[float, ...]:
        """Return agent ``i``'s full row ``(t_i^1, ..., t_i^m)``."""
        return self._times[agent]

    def task_times(self, task: int) -> Tuple[float, ...]:
        """Return the column ``(t_1^j, ..., t_n^j)``."""
        return tuple(row[task] for row in self._times)

    @property
    def times(self) -> Tuple[Tuple[float, ...], ...]:
        """The full (immutable) time matrix."""
        return self._times

    def with_agent_row(self, agent: int,
                       row: Sequence[float]) -> "SchedulingProblem":
        """Return a copy with agent ``agent``'s row replaced.

        This is the ``{y_{-i}, y_i'}`` operation used throughout
        truthfulness checking: swap one agent's report, keep the rest.
        """
        if len(row) != self.num_tasks:
            raise ValueError("replacement row has wrong length")
        rows = [list(r) for r in self._times]
        rows[agent] = list(row)
        return SchedulingProblem(rows, self.tasks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchedulingProblem):
            return NotImplemented
        return self._times == other._times and self.tasks == other.tasks

    def __hash__(self) -> int:
        return hash((self._times, self.tasks))

    def __repr__(self) -> str:
        return "SchedulingProblem(n=%d, m=%d)" % (self.num_agents, self.num_tasks)
