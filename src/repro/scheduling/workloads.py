"""Workload generators for the experiments.

The paper has no empirical workloads (it is a theory paper), so the
experiment suite draws on the standard unrelated-machines workload families
from the scheduling literature, plus two purpose-built families:

* :func:`adversarial_for_minwork` — the classical instance on which
  MinWork's makespan is a factor ``n`` worse than optimal, exercising the
  n-approximation bound (experiment E8);
* :func:`discretize_to_bid_set` — maps continuous times onto DMW's discrete
  bid set ``W`` (paper §3: "the bid value must be discrete and from a known
  set"), which every end-to-end DMW experiment needs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .problem import SchedulingProblem


def uniform_random(num_agents: int, num_tasks: int, rng: random.Random,
                   low: float = 1.0, high: float = 100.0) -> SchedulingProblem:
    """Times drawn i.i.d. uniform on ``[low, high]`` (fully unrelated)."""
    if low <= 0 or high < low:
        raise ValueError("need 0 < low <= high")
    times = [[rng.uniform(low, high) for _ in range(num_tasks)]
             for _ in range(num_agents)]
    return SchedulingProblem(times)


def machine_correlated(num_agents: int, num_tasks: int, rng: random.Random,
                       speed_low: float = 1.0, speed_high: float = 10.0,
                       requirement_low: float = 1.0,
                       requirement_high: float = 100.0) -> SchedulingProblem:
    """Related-machines workload: ``t_i^j = r^j / s_i`` with random speeds.

    Machines are uniformly faster or slower across all tasks — the "machine
    correlated" family.  Covers the related-machines setting the paper's
    future-work section points at.
    """
    requirements = [rng.uniform(requirement_low, requirement_high)
                    for _ in range(num_tasks)]
    speeds = [[rng.uniform(speed_low, speed_high)] for _ in range(num_agents)]
    return SchedulingProblem.from_speeds(requirements, speeds)


def task_correlated(num_agents: int, num_tasks: int, rng: random.Random,
                    base_low: float = 1.0, base_high: float = 100.0,
                    noise: float = 0.2) -> SchedulingProblem:
    """Tasks have intrinsic sizes; agents differ by small multiplicative noise.

    This family makes auctions competitive (bids cluster), stressing the
    second-price logic and tie-breaking.
    """
    if not 0 <= noise < 1:
        raise ValueError("noise must be in [0, 1)")
    bases = [rng.uniform(base_low, base_high) for _ in range(num_tasks)]
    times = [
        [base * rng.uniform(1 - noise, 1 + noise) for base in bases]
        for _ in range(num_agents)
    ]
    return SchedulingProblem(times)


def bimodal(num_agents: int, num_tasks: int, rng: random.Random,
            fast: float = 1.0, slow: float = 50.0,
            fast_probability: float = 0.3) -> SchedulingProblem:
    """Each (agent, task) pair is either a specialist (fast) or not (slow).

    Produces instances where the per-task winner is usually clear but the
    second price varies wildly — a stress case for payment computation.
    """
    times = [
        [fast if rng.random() < fast_probability else slow
         for _ in range(num_tasks)]
        for _ in range(num_agents)
    ]
    return SchedulingProblem(times)


def adversarial_for_minwork(num_agents: int) -> SchedulingProblem:
    """The tight instance for MinWork's n-approximation bound.

    ``n`` tasks; every agent can do every task in 1 unit, except agent 0 who
    does every task in ``1 - epsilon``.  MinWork gives *all* tasks to agent
    0 (makespan ~ n) while the optimum spreads them (makespan 1), so the
    ratio approaches ``n``.
    """
    if num_agents < 2:
        raise ValueError("need at least two agents for the adversarial instance")
    epsilon = 1e-6
    times = []
    for agent in range(num_agents):
        value = 1.0 - epsilon if agent == 0 else 1.0
        times.append([value] * num_agents)
    return SchedulingProblem(times)


def discretize_to_bid_set(problem: SchedulingProblem,
                          bid_values: Sequence[int]) -> SchedulingProblem:
    """Project an instance onto DMW's discrete bid set ``W``.

    Each time is mapped to the *relative rank* scale of ``W``: the range of
    observed times is split into ``len(bid_values)`` equal quantile buckets
    and each entry replaced by the corresponding ``w``.  This preserves the
    per-task ordering structure that determines auction outcomes while
    making every value a legal DMW bid.

    Parameters
    ----------
    problem:
        Continuous instance.
    bid_values:
        DMW's ``W = {w_1 < ... < w_k}`` (positive integers).
    """
    ordered = sorted(bid_values)
    if not ordered or ordered[0] <= 0:
        raise ValueError("bid values must be positive")
    flat = sorted({problem.time(i, j)
                   for i in range(problem.num_agents)
                   for j in range(problem.num_tasks)})
    lowest, highest = flat[0], flat[-1]
    span = highest - lowest
    times = []
    for i in range(problem.num_agents):
        row = []
        for j in range(problem.num_tasks):
            if span == 0:
                bucket = 0
            else:
                fraction = (problem.time(i, j) - lowest) / span
                bucket = min(int(fraction * len(ordered)), len(ordered) - 1)
            row.append(float(ordered[bucket]))
        times.append(row)
    return SchedulingProblem(times, problem.tasks)


def random_discrete(num_agents: int, num_tasks: int,
                    bid_values: Sequence[int],
                    rng: random.Random) -> SchedulingProblem:
    """Times drawn uniformly from the discrete bid set ``W`` itself.

    The natural workload for end-to-end DMW runs: every true value is
    already a legal bid.
    """
    ordered = sorted(bid_values)
    if not ordered or ordered[0] <= 0:
        raise ValueError("bid values must be positive")
    times = [
        [float(rng.choice(ordered)) for _ in range(num_tasks)]
        for _ in range(num_agents)
    ]
    return SchedulingProblem(times)


def heavy_tailed(num_agents: int, num_tasks: int, rng: random.Random,
                 mu: float = 2.0, sigma: float = 1.0) -> SchedulingProblem:
    """Log-normal task times: a few huge outliers dominate, as in real
    cluster traces.  Stresses makespan objectives (MinWork can stack the
    outliers on one fast machine) and the discretizer's bucket edges.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    times = [
        [rng.lognormvariate(mu, sigma) for _ in range(num_tasks)]
        for _ in range(num_agents)
    ]
    return SchedulingProblem(times)


def clustered_specialists(num_agents: int, num_tasks: int,
                          rng: random.Random,
                          num_clusters: int = 2,
                          fast: float = 1.0, slow: float = 20.0
                          ) -> SchedulingProblem:
    """Agents specialize in task clusters (e.g. GPU vs CPU jobs).

    Each task belongs to one of ``num_clusters`` types; each agent is fast
    on exactly one type.  Produces structured competition: per task, the
    auction is between same-specialty agents, and second prices split into
    a fast in-specialty price vs a slow out-of-specialty one.
    """
    if num_clusters < 1:
        raise ValueError("need at least one cluster")
    task_type = [rng.randrange(num_clusters) for _ in range(num_tasks)]
    agent_type = [agent % num_clusters for agent in range(num_agents)]
    times = [
        [fast if agent_type[i] == task_type[j] else slow
         for j in range(num_tasks)]
        for i in range(num_agents)
    ]
    return SchedulingProblem(times)
