"""Deviating agent strategies — the rest of the strategy space ``X``.

Faithfulness (Theorem 5) is a statement over *every* alternative strategy;
this module implements the concrete deviation families the proof of
Theorem 4 walks through, one class per family, so the faithfulness
experiment (:mod:`repro.analysis.faithfulness`) can measure each deviation's
utility against the suggested strategy's:

====================================  ==========================================
strategy                              proof case it instantiates
====================================  ==========================================
:class:`MisreportBidAgent`            information revelation (covered by Thm 2)
:class:`CorruptSharesAgent`           "incorrectly computes its shares"
:class:`CorruptCommitmentsAgent`      "... or commitments"
:class:`WithholdSharesAgent`          "fails to send the shares"
:class:`WithholdCommitmentsAgent`     "neglects to send the commitments"
:class:`WrongAggregatesAgent`         "miscomputing of Lambda_i and Psi_i"
:class:`WithholdAggregatesAgent`      "fails to transmit consistent Lambda/Psi"
:class:`FalseDisclosureAgent`         "transmits invalid f_1(a_i)..f_n(a_i)"
:class:`WithholdDisclosureAgent`      "neglects to send its share"
:class:`EagerDisclosureAgent`         "transmits its share when not needed"
:class:`WrongSecondPriceAgent`        "submits incorrect values for ... second price"
:class:`InflatedPaymentClaimAgent`    "submits the incorrect second-price bid"
:class:`WithholdPaymentClaimAgent`    "fails to submit any values"
====================================  ==========================================

All deviants set ``is_deviant = True`` so orchestration bookkeeping (never
protocol logic) can pick an honest reference transcript.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .agent import DMWAgent
from .bidding import AgentCommitments, ShareBundle
from .parameters import DMWParameters

#: A deviation factory: ``(index, parameters, true_values, rng) -> agent``.
DeviationFactory = Callable[
    [int, DMWParameters, Sequence[int], random.Random], DMWAgent]

#: Commitments + per-recipient bundles, as returned by ``begin_task``.
_BeginTaskResult = Tuple[Optional[AgentCommitments], Dict[int, ShareBundle]]


class DeviantAgent(DMWAgent):
    """Base class for deviating strategies."""

    is_deviant = True


class MisreportBidAgent(DeviantAgent):
    """Reveals an untruthful type but otherwise runs the protocol honestly.

    Parameters
    ----------
    reported_values:
        The bid vector to use instead of the true values; each entry must
        be in ``W``.
    """

    def __init__(self, index: int, parameters: DMWParameters,
                 true_values: Sequence[int],
                 reported_values: Sequence[int],
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(index, parameters, true_values, rng)
        self.reported_values = [int(v) for v in reported_values]
        for value in self.reported_values:
            parameters.validate_bid(value)

    def choose_bid(self, task: int) -> int:
        return self.reported_values[task]


class CorruptSharesAgent(DeviantAgent):
    """Sends valid-looking but wrong share values to chosen victims.

    Detected by the victims' eq. (7)-(9) checks in step III.1.
    """

    def __init__(self, index: int, parameters: DMWParameters,
                 true_values: Sequence[int],
                 victims: Sequence[int],
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(index, parameters, true_values, rng)
        self.victims = set(victims)

    def begin_task(self, task: int) -> _BeginTaskResult:
        commitments, bundles = super().begin_task(task)
        q = self.parameters.group.q
        corrupted: Dict[int, ShareBundle] = {}
        for recipient, bundle in bundles.items():
            if recipient in self.victims:
                corrupted[recipient] = ShareBundle(
                    e_value=(bundle.e_value + 1) % q,
                    f_value=bundle.f_value,
                    g_value=bundle.g_value,
                    h_value=bundle.h_value,
                )
            else:
                corrupted[recipient] = bundle
        return commitments, corrupted


class CorruptCommitmentsAgent(DeviantAgent):
    """Publishes a perturbed commitment vector (shares stay honest).

    Every receiver's step III.1 verification fails against the bogus
    commitments.
    """

    def begin_task(self, task: int) -> _BeginTaskResult:
        commitments, bundles = super().begin_task(task)
        group = self.parameters.group
        o_elements = list(commitments.o_vector.elements)
        o_elements[0] = group.mul(o_elements[0], self.parameters.z1)
        corrupted = AgentCommitments(
            o_vector=type(commitments.o_vector)(
                parameters=self.parameters.group_parameters,
                elements=tuple(o_elements),
            ),
            q_vector=commitments.q_vector,
            r_vector=commitments.r_vector,
        )
        return corrupted, bundles


class WithholdSharesAgent(DeviantAgent):
    """Sends no share bundles to the chosen victims."""

    def __init__(self, index: int, parameters: DMWParameters,
                 true_values: Sequence[int],
                 victims: Sequence[int],
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(index, parameters, true_values, rng)
        self.victims = set(victims)

    def begin_task(self, task: int) -> _BeginTaskResult:
        commitments, bundles = super().begin_task(task)
        return commitments, {recipient: bundle
                             for recipient, bundle in bundles.items()
                             if recipient not in self.victims}


class WithholdCommitmentsAgent(DeviantAgent):
    """Publishes no commitments at all (shares still sent)."""

    def begin_task(self, task: int) -> _BeginTaskResult:
        _, bundles = super().begin_task(task)
        return None, bundles


class WrongAggregatesAgent(DeviantAgent):
    """Publishes a perturbed ``Lambda_i`` in step III.2.

    Fails eq. (11) at every verifier, so the value is excluded from degree
    resolution; harmless while enough valid values remain, fatal (for
    everyone, including the deviant) when the threshold is crossed.
    """

    def publish_aggregates(self, task: int) -> Optional[Tuple[int, int]]:
        published = super().publish_aggregates(task)
        assert published is not None  # the honest step always publishes
        lambda_value, psi_value = published
        return (self.parameters.group.mul(lambda_value, self.parameters.z1),
                psi_value)


class WithholdAggregatesAgent(DeviantAgent):
    """Publishes nothing in step III.2 (but keeps its local copy so its own
    later steps still work)."""

    def publish_aggregates(self, task: int) -> Optional[Tuple[int, int]]:
        super().publish_aggregates(task)
        return None


class FalseDisclosureAgent(DeviantAgent):
    """Discloses a corrupted ``(f, h)`` share row during winner
    identification; detected by eq. (13) and discarded."""

    def disclose_f_shares(self, task: int
                          ) -> Optional[Dict[int, Tuple[int, int]]]:
        row = super().disclose_f_shares(task)
        if row is None:
            return None
        corrupted = dict(row)
        victim = min(corrupted)
        f_value, h_value = corrupted[victim]
        corrupted[victim] = ((f_value + 1) % self.parameters.group.q, h_value)
        return corrupted


class WithholdDisclosureAgent(DeviantAgent):
    """Stays silent during winner identification even when in the
    disclosure set."""

    def disclose_f_shares(self, task: int
                          ) -> Optional[Dict[int, Tuple[int, int]]]:
        return None


class EagerDisclosureAgent(DeviantAgent):
    """Discloses its (valid) row even when *not* in the disclosure set.

    The proof of Theorem 4 notes this yields exactly the same utility as
    honesty — extra valid information never hurts resolution.
    """

    def disclose_f_shares(self, task: int
                          ) -> Optional[Dict[int, Tuple[int, int]]]:
        state = self._state(task)
        return {
            sender: (bundle.f_value, bundle.h_value)
            for sender, bundle in sorted(state.received_bundles.items())
        }


class WrongSecondPriceAgent(DeviantAgent):
    """Publishes perturbed winner-excluded aggregates in step III.4."""

    def publish_excluded_aggregates(self, task: int
                                    ) -> Optional[Tuple[int, int]]:
        published = super().publish_excluded_aggregates(task)
        assert published is not None  # only called for resolvable tasks
        lambda_prime, psi_prime = published
        return (self.parameters.group.mul(lambda_prime, self.parameters.z1),
                psi_prime)


class FalseComplaintAgent(DeviantAgent):
    """Complains about every publisher it is assigned to verify.

    Arbitration recomputes the checks, confirms the publishers are honest,
    and the complaints change nothing — the deviation costs everyone one
    arbitration pass and gains the complainer nothing.
    """

    def validate_aggregates(self, task: int,
                            published: Dict[int, Tuple[int, int]]
                            ) -> List[int]:
        super().validate_aggregates(task, published)
        return [p for p in self._checked_publishers(published)]

    def validate_disclosures(self, task: int,
                             rows: Dict[int, Dict[int, Tuple[int, int]]]
                             ) -> List[int]:
        super().validate_disclosures(task, rows)
        assigned = set(self.parameters.verification_assignments(self.index))
        return [d for d in rows if d in assigned and d != self.index]


class SilentWinnerAgent(DeviantAgent):
    """Never claims winnership, even when it won.

    The fallback scan in winner identification finds it anyway (its
    ``f``-shares are already public), so the outcome — and its utility —
    is unchanged.
    """

    def claim_winnership(self, task: int) -> bool:
        return False


class FalseWinnerClaimAgent(DeviantAgent):
    """Always claims winnership.

    The eq. (14) test on its disclosed ``f``-shares fails whenever its bid
    exceeds ``y*``, so the false claim is discarded.
    """

    def claim_winnership(self, task: int) -> bool:
        return True


class InflatedPaymentClaimAgent(DeviantAgent):
    """Claims a larger payment for itself in Phase IV.

    The unanimity escrow sees the conflict and dispenses nothing.
    """

    def __init__(self, index: int, parameters: DMWParameters,
                 true_values: Sequence[int],
                 inflation: float = 10.0,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(index, parameters, true_values, rng)
        self.inflation = inflation

    def payment_claim(self, tasks: Optional[Iterable[int]] = None
                      ) -> Optional[List[float]]:
        claim = super().payment_claim(tasks)
        assert claim is not None  # the honest claim is always a full vector
        claim[self.index] += self.inflation
        return claim


class WithholdPaymentClaimAgent(DeviantAgent):
    """Submits no payment claim at all."""

    def payment_claim(self, tasks: Optional[Iterable[int]] = None
                      ) -> Optional[List[float]]:
        return None


#: Deviation factories for the faithfulness sweep: name -> callable taking
#: ``(index, parameters, true_values, rng)`` and returning an agent.
def standard_deviations() -> Dict[str, DeviationFactory]:
    """Return the named deviation factory table used by experiment E5."""
    def make(cls: Callable[..., DMWAgent], **kwargs: Any) -> DeviationFactory:
        def factory(index: int, parameters: DMWParameters,
                    true_values: Sequence[int],
                    rng: random.Random) -> DMWAgent:
            return cls(index, parameters, true_values, rng=rng, **kwargs)
        return factory

    def make_victims(cls: Callable[..., DMWAgent]) -> DeviationFactory:
        def factory(index: int, parameters: DMWParameters,
                    true_values: Sequence[int],
                    rng: random.Random) -> DMWAgent:
            victims = [k for k in range(parameters.num_agents) if k != index][:1]
            return cls(index, parameters, true_values, victims=victims, rng=rng)
        return factory

    def make_misreport() -> DeviationFactory:
        def factory(index: int, parameters: DMWParameters,
                    true_values: Sequence[int],
                    rng: random.Random) -> DMWAgent:
            reported: List[int] = []
            bid_values = parameters.bid_values
            for value in true_values:
                position = bid_values.index(value)
                shifted = bid_values[(position + 1) % len(bid_values)]
                reported.append(shifted)
            return MisreportBidAgent(index, parameters, true_values,
                                     reported, rng=rng)
        return factory

    return {
        "misreport_bid": make_misreport(),
        "corrupt_shares": make_victims(CorruptSharesAgent),
        "corrupt_commitments": make(CorruptCommitmentsAgent),
        "withhold_shares": make_victims(WithholdSharesAgent),
        "withhold_commitments": make(WithholdCommitmentsAgent),
        "wrong_aggregates": make(WrongAggregatesAgent),
        "withhold_aggregates": make(WithholdAggregatesAgent),
        "false_disclosure": make(FalseDisclosureAgent),
        "withhold_disclosure": make(WithholdDisclosureAgent),
        "eager_disclosure": make(EagerDisclosureAgent),
        "false_complaint": make(FalseComplaintAgent),
        "silent_winner": make(SilentWinnerAgent),
        "false_winner_claim": make(FalseWinnerClaimAgent),
        "wrong_second_price": make(WrongSecondPriceAgent),
        "inflated_payment_claim": make(InflatedPaymentClaimAgent),
        "withhold_payment_claim": make(WithholdPaymentClaimAgent),
    }
