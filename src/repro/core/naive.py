"""Open Problem 10's strawman: naively distributed MinWork.

The paper's discussion of Feigenbaum-Shenker's Open Problem 10 notes that
"the centralized MinWork can be simply distributed among obedient nodes":
every agent broadcasts its bid row in the clear, every agent computes the
outcome redundantly, and a payment escrow releases payments on unanimity.
DMW's entire cryptographic machinery exists to improve on this strawman's
*strategic model* (it tolerates strategic/adversarial nodes) and its
*privacy* (losing bids stay hidden).

This module implements the strawman so the delta is measurable:

======================  =======================  =========================
property                naive distribution       DMW
======================  =======================  =========================
communication           ``Theta(m n^2)``*        ``Theta(m n^2)``
per-agent computation   ``Theta(m n)``           ``O(m n^2 log p)``
bid privacy             none (all bids public)   losers hidden up to ``c``
strategic model         obedient-or-detected     faithful (ex post Nash)
======================  =======================  =========================

(*) one broadcast per agent expands to ``n - 1`` unicasts, so the naive
scheme already pays the quadratic message bill — what DMW buys with its
extra ``n log p`` computation factor is *privacy*, not bandwidth.

The outcome is publicly recomputable by every participant, so outcome
*manipulation* is detectable here too; what the naive scheme cannot do is
keep a losing bid secret for even one second.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..mechanisms.base import MechanismResult
from ..mechanisms.minwork import MinWork
from ..network.metrics import NetworkMetrics
from ..network.simulator import SynchronousNetwork
from ..scheduling.problem import SchedulingProblem
from ..scheduling.schedule import Schedule
from .exceptions import ProtocolAbort
from .outcome import DMWOutcome
from .payments import PaymentInfrastructure


class NaiveAgent:
    """An agent of the naive protocol: broadcast bids, recompute outcome."""

    def __init__(self, index: int, true_values: Sequence[float]) -> None:
        self.index = index
        self.true_values = list(true_values)
        self.observed_bids: Dict[int, Tuple[float, ...]] = {}
        #: elementary operations (the Theta(mn) recomputation)
        self.operations = 0

    def choose_bids(self) -> List[float]:
        """Truthful by default (MinWork is truthful, Theorem 2)."""
        return list(self.true_values)

    def observe(self, sender: int, bids: Sequence[float]) -> None:
        self.observed_bids[sender] = tuple(bids)

    def compute_outcome(self, num_agents: int) -> MechanismResult:
        """Recompute MinWork from the observed (public) bids."""
        missing = [k for k in range(num_agents)
                   if k not in self.observed_bids]
        if missing:
            raise ProtocolAbort(
                "agents %s broadcast no bids" % missing,
                phase="bidding", detected_by=self.index,
                offender=missing[0],
            )
        bids = SchedulingProblem([self.observed_bids[k]
                                  for k in range(num_agents)])
        mechanism = MinWork()
        result = mechanism.run(bids)
        self.operations += mechanism.last_operation_count
        return result


class NaiveDistributedMinWork:
    """The broadcast-everything distributed MinWork."""

    def __init__(self, agents: Sequence[NaiveAgent]) -> None:
        if len(agents) < 2:
            raise ValueError("need at least two agents")
        self.agents = list(agents)
        # The escrow endpoint observes the clear bids too (explicit
        # opt-in: broadcasts expand to n copies, same as DMW's).
        self.network = SynchronousNetwork(len(agents), extra_participants=1,
                                          broadcast_to_extras=True)
        self.infrastructure = PaymentInfrastructure(len(agents))

    def execute(self, num_tasks: int) -> DMWOutcome:
        """Broadcast bids, recompute, escrow payments."""
        n = len(self.agents)
        for agent in self.agents:
            bids = agent.choose_bids()
            if bids is not None:
                if len(bids) != num_tasks:
                    raise ValueError("bid row length mismatch")
                agent.observe(agent.index, bids)
                self.network.publish(agent.index, "clear_bids", bids,
                                     field_elements=num_tasks)
        self.network.deliver()
        for agent in self.agents:
            for message in self.network.receive(agent.index, "clear_bids"):
                agent.observe(message.sender, message.payload)

        results = []
        try:
            for agent in self.agents:
                results.append(agent.compute_outcome(n))
        except ProtocolAbort as abort:
            return DMWOutcome(completed=False, schedule=None, payments=None,
                              transcripts=[], abort=abort,
                              network_metrics=self.network.metrics,
                              agent_operations=[
                                  {"multiplication_work": a.operations}
                                  for a in self.agents])

        for agent, result in zip(self.agents, results):
            self.network.send(agent.index, n, "payment_claim",
                              list(result.payments), field_elements=n)
        self.network.deliver()
        for message in self.network.receive(n, "payment_claim"):
            self.infrastructure.submit_claim(message.sender,
                                             message.payload)
        decision = self.infrastructure.decide()
        if not decision.dispensed:
            abort = ProtocolAbort(
                "payment claims conflict (agents %s)"
                % (decision.conflicting_agents,), phase="payments")
            return DMWOutcome(completed=False, schedule=None, payments=None,
                              transcripts=[], abort=abort,
                              network_metrics=self.network.metrics,
                              agent_operations=[
                                  {"multiplication_work": a.operations}
                                  for a in self.agents])
        reference = results[0]
        return DMWOutcome(completed=True, schedule=reference.schedule,
                          payments=decision.payments, transcripts=[],
                          abort=None, network_metrics=self.network.metrics,
                          agent_operations=[
                              {"multiplication_work": a.operations}
                              for a in self.agents])


def run_naive(problem: SchedulingProblem) -> DMWOutcome:
    """Convenience wrapper: honest naive agents on ``problem``."""
    agents = [NaiveAgent(index, problem.agent_times(index))
              for index in range(problem.num_agents)]
    protocol = NaiveDistributedMinWork(agents)
    return protocol.execute(problem.num_tasks)
