"""The DMW agent implementing the suggested strategy ``chi_suggest``.

A :class:`DMWAgent` holds an agent's private types, randomness, and
operation meter, and exposes one method per protocol action.  The
orchestrator (:mod:`repro.core.protocol`) moves the returned values over
the simulated network and routes incoming messages back — so all *logic*
lives here while all *communication accounting* lives in the network.

The method set decomposes exactly along Shneidman-Parkes action types used
by Theorems 3-4:

* information revelation: :meth:`choose_bid` (truthful by default);
* computational actions: everything else (encode, verify, publish
  aggregates, disclose, resolve, claim payments).

Deviating strategies (:mod:`repro.core.deviant`) subclass this and override
individual actions; each honest verification method detects the deviations
the corresponding theorem says it must.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..crypto.fastexp import PublicValueCache
from ..crypto.modular import OperationCounter
from ..crypto.secret import SecretInt, declassify, tag_secret
from .bidding import (
    AgentCommitments,
    BidPackage,
    ShareBundle,
    all_share_bundles,
    encode_bid,
)
from .exceptions import ProtocolAbort
from .parameters import DMWParameters
from .resolution import (
    ResolutionError,
    identify_winner,
    resolve_first_price,
    resolve_second_price,
)
from .verification import (
    CheckStats,
    verify_f_disclosure,
    verify_lambda_psi,
    verify_share_bundle,
)


@dataclass
class _TaskState:
    """Per-task private state accumulated over the auction."""

    package: Optional[BidPackage] = None
    received_bundles: Dict[int, ShareBundle] = field(default_factory=dict)
    commitments: Dict[int, AgentCommitments] = field(default_factory=dict)
    lambda_value: Optional[int] = None
    psi_value: Optional[int] = None
    valid_lambdas: Dict[int, int] = field(default_factory=dict)
    first_price: Optional[int] = None
    valid_disclosures: Dict[int, Dict[int, Tuple[int, int]]] = field(
        default_factory=dict)
    winner_claimants: Optional[List[int]] = None
    winner: Optional[int] = None
    valid_excluded_lambdas: Dict[int, int] = field(default_factory=dict)
    second_price: Optional[int] = None


class DMWAgent:
    """An agent following the suggested strategy.

    Parameters
    ----------
    index:
        The agent's index ``i`` (its pseudonym is
        ``parameters.pseudonyms[index]``).
    parameters:
        The published Phase I parameters.
    true_values:
        The agent's private types ``t_i^j`` per task; every value must lie
        in the published bid set ``W``.
    rng:
        Private randomness (polynomial coefficients).
    """

    def __init__(self, index: int, parameters: DMWParameters,
                 true_values: Sequence[int],
                 rng: Optional[random.Random] = None) -> None:
        self.index = index
        self.parameters = parameters
        self.true_values = [int(v) for v in true_values]
        for value in self.true_values:
            parameters.validate_bid(value)
        self.rng = rng or random.Random(index)
        # Determinism contract (docs/PERFORMANCE.md, "Process-pool
        # execution"): private randomness is consumed through per-task
        # substreams derived from this root, so every driver — sequential,
        # phase-barrier, process-pool — draws identical polynomial
        # coefficients for a given (seed, task) regardless of execution
        # order or process boundaries.
        self.rng_root = self.rng.getrandbits(64)
        self.counter = OperationCounter()
        # Memo for publicly derivable values (Gamma/Phi, commitment
        # evaluations, Lagrange weights).  The protocol replaces it with
        # one cache shared across the execution's agents — the values are
        # public, and each agent's counter is still charged the full
        # analytic schedule on every (cached or not) access.
        self.cache = PublicValueCache()
        # Pass/fail tallies of every verification equation this agent
        # evaluates (read by repro.obs; never touches the counted model).
        self.check_stats = CheckStats()
        self._tasks: Dict[int, _TaskState] = {}

    # -- small helpers -----------------------------------------------------------
    @property
    def pseudonym(self) -> int:
        return self.parameters.pseudonyms[self.index]

    def adopt_cache(self, cache: PublicValueCache) -> None:
        """Install the execution-scoped public-value cache (protocol hook)."""
        self.cache = cache

    def _state(self, task: int) -> _TaskState:
        return self._tasks.setdefault(task, _TaskState())

    def task_rng(self, task: int) -> random.Random:
        """The private randomness substream for ``task``'s auction.

        Derived by hashing ``(rng_root, task)`` so the stream is a pure
        function of the agent's seed and the task index — independent of
        the order auctions are run in and of process boundaries.  This is
        what makes the process-pool driver (:mod:`repro.parallel`)
        bit-identical to the sequential one.
        """
        digest = hashlib.sha256(
            b"dmw-task-rng|%d|%d" % (self.rng_root, task)).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def batch_verify_rng(self, task: int, sender: int) -> random.Random:
        """The RLC-coefficient substream for batched share verification.

        Batched mode (``share_verification_mode == "batched"``) folds each
        sender's eq. (7)-(9) checks into one random-linear-combination
        multi-exp; the combination coefficients come from this stream.
        Like :meth:`task_rng` it is a pure function of
        ``(rng_root, task, sender)`` — a distinct domain-separation tag
        keeps it disjoint from the bidding stream — so replays, resumed
        checkpoints, and the process-pool driver all draw identical
        coefficients regardless of execution order.
        """
        digest = hashlib.sha256(
            b"dmw-batch-verify|%d|%d|%d"
            % (self.rng_root, task, sender)).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def _abort(self, reason: str, phase: str, task: Optional[int] = None,
               offender: Optional[int] = None) -> ProtocolAbort:
        return ProtocolAbort(reason=reason, phase=phase, task=task,
                             detected_by=self.index, offender=offender)

    # ==== information-revelation action =====================================
    def choose_bid(self, task: int) -> SecretInt:
        """The bid to encode for ``task``.

        The suggested strategy reveals the true type.  Misreporting
        strategies override only this method — the centralized
        truthfulness of MinWork (Theorem 2) is what makes such deviations
        unprofitable.

        Under ``DMW_SANITIZE=1`` the returned value is taint-wrapped in
        :class:`~repro.crypto.secret.Secret`: any attempt to print, format,
        or serialize it raises ``SecretLeakError`` unless it first passes
        the ``declassify`` gate (the paper sanctions revealing only ``y*``,
        the winner identity, and ``y**``).
        """
        return tag_secret(self.true_values[task],
                          label="bid[agent=%d,task=%d]" % (self.index, task))

    # ==== Phase II: bidding ====================================================
    def begin_task(self, task: int
                   ) -> Tuple[Optional[AgentCommitments],
                              Dict[int, ShareBundle]]:
        """Steps II.1-II.3: encode the bid, produce commitments and bundles.

        Returns the commitments to publish and the bundle for every *other*
        agent; the own-pseudonym bundle is retained locally (the aggregates
        of step III.2 include the agent's own polynomials).
        """
        state = self._state(task)
        state.package = encode_bid(self.parameters, self.choose_bid(task),
                                   self.task_rng(task), self.counter)
        bundles = all_share_bundles(self.parameters, state.package,
                                    self.counter)
        state.received_bundles[self.index] = bundles.pop(self.index)
        state.commitments[self.index] = state.package.commitments
        return state.package.commitments, bundles

    def receive_bundle(self, task: int, sender: int,
                       bundle: ShareBundle) -> None:
        """Store a share bundle received over the private channel."""
        self._state(task).received_bundles[sender] = bundle

    def receive_commitments(self, task: int, sender: int,
                            commitments: AgentCommitments) -> None:
        """Store published commitments read off the bulletin board."""
        self._state(task).commitments[sender] = commitments

    # ==== Phase III: allocating tasks =========================================
    def check_shares(self, task: int) -> Optional[ProtocolAbort]:
        """Step III.1: verify every received bundle against eq. (7)-(9).

        Returns a :class:`ProtocolAbort` describing the first violation
        found, or ``None`` when all bundles check out.  Missing bundles or
        commitments are violations too (step II.4's synchronization barrier
        requires them all).
        """
        state = self._state(task)
        for sender in range(self.parameters.num_agents):
            if sender == self.index:
                continue
            if sender not in state.commitments:
                return self._abort(
                    "agent %d published no commitments" % sender,
                    phase="bidding", task=task, offender=sender,
                )
            if sender not in state.received_bundles:
                return self._abort(
                    "agent %d sent no share bundle" % sender,
                    phase="bidding", task=task, offender=sender,
                )
            batched = self.parameters.share_verification_mode == "batched"
            valid = verify_share_bundle(
                self.parameters, state.commitments[sender], self.pseudonym,
                state.received_bundles[sender], self.counter, self.cache,
                stats=self.check_stats,
                rng=self.batch_verify_rng(task, sender) if batched else None,
            )
            if not valid:
                return self._abort(
                    "agent %d's shares are inconsistent with its commitments"
                    % sender,
                    phase="allocating", task=task, offender=sender,
                )
        return None

    def publish_aggregates(self, task: int) -> Optional[Tuple[int, int]]:
        """Step III.2: compute and return ``(Lambda_i, Psi_i)``.

        ``Lambda_i = z1^{E(alpha_i)}`` and ``Psi_i = z2^{H(alpha_i)}``
        where ``E``/``H`` sum every agent's ``e``/``h`` polynomial and
        ``alpha_i`` is this agent's own pseudonym.
        """
        state = self._state(task)
        q = self.parameters.group.q
        e_total, h_total = 0, 0
        for bundle in state.received_bundles.values():
            e_total = (e_total + bundle.e_value) % q
            h_total = (h_total + bundle.h_value) % q
        group_parameters = self.parameters.group_parameters
        state.lambda_value = group_parameters.exp_z1(e_total, self.counter)
        state.psi_value = group_parameters.exp_z2(h_total, self.counter)
        return state.lambda_value, state.psi_value

    def _verify_one_aggregate(self, task: int, publisher: int,
                              value: Tuple[int, int],
                              exclude: Optional[int] = None) -> bool:
        state = self._state(task)
        commitments = [state.commitments[k]
                       for k in range(self.parameters.num_agents)]
        lambda_value, psi_value = value
        return verify_lambda_psi(
            self.parameters, commitments,
            self.parameters.pseudonyms[publisher],
            lambda_value, psi_value, exclude=exclude, counter=self.counter,
            cache=self.cache, stats=self.check_stats,
        )

    def _checked_publishers(self, published: Dict[int, Tuple[int, int]]
                            ) -> List[int]:
        """Publishers this agent must verify under the current mode."""
        if self.parameters.verification_mode == "full":
            return [p for p in published if p != self.index]
        assigned = self.parameters.verification_assignments(self.index)
        return [p for p in assigned if p in published and p != self.index]

    def validate_aggregates(self, task: int,
                            published: Dict[int, Tuple[int, int]]
                            ) -> List[int]:
        """Check published ``(Lambda_k, Psi_k)`` values with eq. (11).

        Invalid or missing publishers are *excluded* rather than fatal:
        degree resolution can use any sufficiently large valid subset (the
        Theorem 4 discussion's "resolution is unaffected" case).  The
        shortage case surfaces later as a :class:`ResolutionError`.

        In ``"assigned"`` mode this agent verifies only the ``c + 1``
        publishers assigned to it (the Theorem 12 cost budget) and returns
        the failing ones as *complaints* for arbitration; all published
        values are accepted provisionally.  In ``"full"`` mode everything
        is verified locally and no complaints are needed.
        """
        state = self._state(task)
        complaints: List[int] = []
        if self.parameters.verification_mode == "full":
            state.valid_lambdas = {}
            for publisher, value in published.items():
                if self._verify_one_aggregate(task, publisher, value):
                    state.valid_lambdas[publisher] = value[0]
            return complaints
        state.valid_lambdas = {publisher: value[0]
                               for publisher, value in published.items()}
        for publisher in self._checked_publishers(published):
            if not self._verify_one_aggregate(task, publisher,
                                              published[publisher]):
                complaints.append(publisher)
        return complaints

    def arbitrate_aggregates(self, task: int,
                             published: Dict[int, Tuple[int, int]],
                             complaints: Sequence[int]) -> None:
        """Settle complaints by full recomputation (assigned mode only).

        Every honest agent recomputes eq. (11) for each complained
        publisher, so all honest agents converge on the same valid set;
        false complaints cost one recomputation and change nothing.
        """
        if self.parameters.verification_mode == "full":
            return
        state = self._state(task)
        for publisher in set(complaints):
            if publisher not in published:
                continue
            if not self._verify_one_aggregate(task, publisher,
                                              published[publisher]):
                state.valid_lambdas.pop(publisher, None)

    def resolve_first(self, task: int) -> int:
        """Eq. (12): resolve and remember the first price ``y*``.

        The minimum bid is one of the three reveals the paper sanctions;
        it is routed through the ``declassify`` audit gate.
        """
        state = self._state(task)
        first_price, _ = resolve_first_price(self.parameters,
                                             state.valid_lambdas,
                                             self.counter, self.cache)
        state.first_price = declassify(
            first_price, label="y*",
            reason="sanctioned reveal: minimum bid y* resolved from the "
                   "published aggregates (Phase III eq. (12))")
        return state.first_price

    def disclosure_rank(self, task: int) -> Optional[int]:
        """This agent's rank in the disclosure order, or ``None``.

        The disclosure set is the first ``disclosure_width(y*)`` agents in
        pseudonym order — a deterministic public rule, so every agent knows
        whether it must disclose (step III.3).
        """
        state = self._state(task)
        if state.first_price is None:
            return None
        width = self.parameters.disclosure_width(state.first_price)
        order = sorted(range(self.parameters.num_agents),
                       key=lambda i: self.parameters.pseudonyms[i])
        rank = order.index(self.index)
        return rank if rank < width else None

    def disclose_f_shares(self, task: int
                          ) -> Optional[Dict[int, Tuple[int, int]]]:
        """Step III.3: publish the ``(f, h)`` share row this agent holds.

        Returns ``{agent l -> (f_l(alpha_i), h_l(alpha_i))}`` when this
        agent is in the disclosure set, else ``None``.
        """
        if self.disclosure_rank(task) is None:
            return None
        state = self._state(task)
        return {
            sender: (bundle.f_value, bundle.h_value)
            for sender, bundle in sorted(state.received_bundles.items())
        }

    def claim_winnership(self, task: int) -> bool:
        """Announce candidacy when this agent's own bid equals ``y*``.

        Claims let winner identification test ``O(1)`` candidates instead
        of all ``n`` agents; a false claim fails the eq. (14) test and a
        silent winner is still found by the fallback scan, so claims are
        a cost optimization, not a trust assumption.
        """
        state = self._state(task)
        claiming = (state.package is not None
                    and state.first_price is not None
                    and state.package.bid == state.first_price)
        if claiming and state.package is not None:
            # Claiming winnership publicly equates this agent's own bid
            # with the already-public y* — a sanctioned self-reveal.
            declassify(state.package.bid, label="winner_bid",
                       reason="sanctioned reveal: winner candidacy equates "
                              "own bid with the public first price y* "
                              "(Phase III step 3)")
        return claiming

    def _verify_one_disclosure(self, task: int, discloser: int,
                               row: Dict[int, Tuple[int, int]]) -> bool:
        state = self._state(task)
        commitments = [state.commitments[k]
                       for k in range(self.parameters.num_agents)]
        return verify_f_disclosure(
            self.parameters, commitments,
            self.parameters.pseudonyms[discloser], row, self.counter,
            self.cache, stats=self.check_stats,
        )

    def validate_disclosures(self, task: int,
                             rows: Dict[int, Dict[int, Tuple[int, int]]]) -> List[int]:
        """Verify disclosed rows with eq. (13).

        Mirrors :meth:`validate_aggregates`: full local verification in
        ``"full"`` mode, assigned verification plus complaints in
        ``"assigned"`` mode.
        """
        state = self._state(task)
        complaints: List[int] = []
        if self.parameters.verification_mode == "full":
            state.valid_disclosures = {}
            for discloser, row in rows.items():
                if self._verify_one_disclosure(task, discloser, row):
                    state.valid_disclosures[discloser] = row
            return complaints
        state.valid_disclosures = dict(rows)
        assigned = set(self.parameters.verification_assignments(self.index))
        for discloser, row in rows.items():
            if discloser in assigned and discloser != self.index:
                if not self._verify_one_disclosure(task, discloser, row):
                    complaints.append(discloser)
        return complaints

    def arbitrate_disclosures(self, task: int,
                              rows: Dict[int, Dict[int, Tuple[int, int]]],
                              complaints: Sequence[int]) -> None:
        """Settle disclosure complaints by full recomputation."""
        if self.parameters.verification_mode == "full":
            return
        state = self._state(task)
        for discloser in set(complaints):
            if discloser not in rows:
                continue
            if not self._verify_one_disclosure(task, discloser,
                                               rows[discloser]):
                state.valid_disclosures.pop(discloser, None)

    def find_winner(self, task: int,
                    claimants: Optional[Sequence[int]] = None) -> int:
        """Eq. (14): identify and remember the winner."""
        state = self._state(task)
        if claimants is not None:
            state.winner_claimants = list(claimants)
        state.winner = declassify(
            identify_winner(self.parameters, state.first_price,
                            state.valid_disclosures,
                            claimants=state.winner_claimants,
                            counter=self.counter,
                            cache=self.cache),
            label="winner",
            reason="sanctioned reveal: winner identity from the disclosed "
                   "f-share rows (Phase III eq. (14))")
        return state.winner

    def publish_excluded_aggregates(self, task: int
                                    ) -> Optional[Tuple[int, int]]:
        """Step III.4: divide the winner out of the published aggregates.

        Returns ``(Lambda'_i, Psi'_i) = (Lambda_i / z1^{e_*(alpha_i)},
        Psi_i / z2^{h_*(alpha_i)})`` computed from the winner's share
        bundle this agent holds.
        """
        state = self._state(task)
        winner_bundle = state.received_bundles[state.winner]
        group = self.parameters.group
        group_parameters = self.parameters.group_parameters
        lambda_prime = group.div(
            state.lambda_value,
            group_parameters.exp_z1(winner_bundle.e_value, self.counter),
            self.counter,
        )
        psi_prime = group.div(
            state.psi_value,
            group_parameters.exp_z2(winner_bundle.h_value, self.counter),
            self.counter,
        )
        return lambda_prime, psi_prime

    def validate_excluded_aggregates(self, task: int,
                                     published: Dict[int, Tuple[int, int]]
                                     ) -> List[int]:
        """Eq. (11) restricted to the non-winners (checks the step III.4
        values before second-price resolution).  Same verification regime
        as :meth:`validate_aggregates`."""
        state = self._state(task)
        complaints: List[int] = []
        if self.parameters.verification_mode == "full":
            state.valid_excluded_lambdas = {}
            for publisher, value in published.items():
                if self._verify_one_aggregate(task, publisher, value,
                                              exclude=state.winner):
                    state.valid_excluded_lambdas[publisher] = value[0]
            return complaints
        state.valid_excluded_lambdas = {publisher: value[0]
                                        for publisher, value
                                        in published.items()}
        for publisher in self._checked_publishers(published):
            if not self._verify_one_aggregate(task, publisher,
                                              published[publisher],
                                              exclude=state.winner):
                complaints.append(publisher)
        return complaints

    def arbitrate_excluded_aggregates(self, task: int,
                                      published: Dict[int, Tuple[int, int]],
                                      complaints: Sequence[int]) -> None:
        """Settle second-price complaints by full recomputation."""
        if self.parameters.verification_mode == "full":
            return
        state = self._state(task)
        for publisher in set(complaints):
            if publisher not in published:
                continue
            if not self._verify_one_aggregate(task, publisher,
                                              published[publisher],
                                              exclude=state.winner):
                state.valid_excluded_lambdas.pop(publisher, None)

    def resolve_second(self, task: int) -> int:
        """Resolve and remember the second price ``y**``."""
        state = self._state(task)
        second_price, _ = resolve_second_price(
            self.parameters, state.valid_excluded_lambdas, self.counter
        )
        state.second_price = declassify(
            second_price, label="y**",
            reason="sanctioned reveal: second price y** from the "
                   "winner-excluded aggregates (Phase III step 4)")
        return state.second_price

    # ==== Phase IV: payments =====================================================
    def payment_claim(self, tasks: Optional[Iterable[int]] = None
                      ) -> Optional[List[float]]:
        """Step IV.1: the payment vector this agent believes is correct.

        The return type admits ``None`` (submit nothing) so withholding
        strategies are expressible in the strategy space ``X``; the honest
        implementation always returns a full vector.

        ``P_i = sum of second prices over the tasks agent i won`` — every
        agent computes the *full* vector from its own transcript and
        submits it to the payment infrastructure.

        ``tasks`` restricts the claim to the given task set (graceful
        degradation: quarantined auctions contribute no payment).  The
        default claims over every auction this agent participated in, and
        aborts if any of them is unresolved.
        """
        totals = [0.0] * self.parameters.num_agents
        claimed = sorted(self._tasks) if tasks is None else sorted(tasks)
        for task in claimed:
            state = self._tasks[task]
            if state.winner is None or state.second_price is None:
                raise ProtocolAbort(
                    "payment claim requested before task %d resolved" % task,
                    phase="payments", task=task, detected_by=self.index,
                )
            totals[state.winner] += state.second_price
        return totals

    # -- introspection (used by tests and analysis) -----------------------------
    def task_state(self, task: int) -> _TaskState:
        """Expose per-task state (testing/analysis hook, not protocol API)."""
        return self._state(task)
