"""Outcome records for DMW executions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from typing import Union

from ..network.metrics import NetworkMetrics
from ..scheduling.problem import SchedulingProblem
from ..scheduling.schedule import PartialSchedule, Schedule
from .exceptions import ProtocolAbort


@dataclass(frozen=True)
class AuctionTranscript:
    """What one task's distributed Vickrey auction revealed.

    Per Theorem 10's remark, this is exactly the information DMW discloses:
    the winner, the first price, and the second price — *not* the losing
    agents' identities or bids.
    """

    task: int
    first_price: int
    winner: int
    second_price: int
    #: Agents whose published Lambda/Psi passed eq. (11).
    valid_aggregate_publishers: Tuple[int, ...]
    #: Agents whose disclosure rows passed eq. (13).
    valid_disclosers: Tuple[int, ...]


@dataclass
class DMWOutcome:
    """The result of one full DMW execution (all ``m`` auctions + payments).

    Either ``completed`` with a schedule and unanimous payments, or aborted
    with an attached :class:`ProtocolAbort` — in which case every agent's
    utility is zero (no allocation is executed, no payment dispensed),
    matching the termination semantics of the faithfulness proofs.

    Under graceful degradation (``degraded=True``) a third shape exists:
    ``completed`` with a :class:`~repro.scheduling.schedule.PartialSchedule`
    and per-task aborts in :attr:`task_aborts` — every quarantined task is
    unassigned and contributes nothing to payments or valuations, while the
    surviving tasks executed exactly as they would have in a fault-free run.
    """

    completed: bool
    schedule: Optional[Union[Schedule, PartialSchedule]]
    payments: Optional[Tuple[float, ...]]
    transcripts: List[AuctionTranscript]
    abort: Optional[ProtocolAbort]
    network_metrics: NetworkMetrics
    #: Per-agent modular-operation snapshots (Theorem 12 measurements).
    agent_operations: List[Dict[str, int]] = field(default_factory=list)
    #: Execution-scoped :meth:`~repro.crypto.fastexp.PublicValueCache.stats`
    #: snapshot (hit/miss/size; empty when the protocol never populated it).
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: True when the execution ran in graceful-degradation mode.
    degraded: bool = False
    #: Per-task aborts that were quarantined instead of voiding the run
    #: (empty outside degraded mode and on fault-free degraded runs).
    task_aborts: Dict[int, ProtocolAbort] = field(default_factory=dict)
    #: Process-pool driver metadata (``workers``, ``batches``,
    #: ``tasks_pooled``); empty for the in-process drivers.
    parallelism: Dict[str, Any] = field(default_factory=dict)

    @property
    def quarantined_tasks(self) -> Tuple[int, ...]:
        """Tasks whose auctions were quarantined (sorted)."""
        return tuple(sorted(self.task_aborts))

    def utility(self, agent: int, true_values: SchedulingProblem) -> float:
        """Return ``U_i = P_i + V_i`` (0 when the protocol terminated)."""
        if not self.completed:
            return 0.0
        return (self.payments[agent]
                + self.schedule.valuation(agent, true_values))

    def utilities(self, true_values: SchedulingProblem) -> List[float]:
        """Utility vector for all agents."""
        return [self.utility(agent, true_values)
                for agent in range(len(self.agent_operations)
                                   or true_values.num_agents)]

    @property
    def max_agent_work(self) -> int:
        """Largest per-agent multiplication work (the per-agent cost of
        Theorem 12)."""
        if not self.agent_operations:
            return 0
        return max(ops["multiplication_work"] for ops in self.agent_operations)
