"""Phase IV: the payment infrastructure.

The paper assumes "the existence of a payment infrastructure to which all
agents have access" and specifies only its decision rule: *"The payment
infrastructure issues the payment to A_i if the participating agents agree
on P_i; otherwise, no payment is dispensed."*  Combined with the proof of
Theorem 8 ("the infrastructure will detect the conflict and will issue no
payments"), we model it as a **unanimity escrow**: every agent submits the
full payment vector it computed; payments are dispensed only if all
submitted vectors are identical, and any conflict voids the entire
execution (no payments *and* no allocation is executed), so that a
conflicting claim can never leave an honest agent with negative utility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PaymentDecision:
    """The infrastructure's verdict on the submitted claims.

    Attributes
    ----------
    dispensed:
        True when all claims agreed and payments were issued.
    payments:
        The agreed payment vector (``None`` on conflict).
    conflicting_agents:
        Agents whose claims differed from the majority view (empty when
        dispensed; on conflict, the minority claim holders — a diagnostic,
        not a penalty mechanism).
    """

    dispensed: bool
    payments: Optional[Tuple[float, ...]]
    conflicting_agents: Tuple[int, ...]


class PaymentInfrastructure:
    """Unanimity escrow over full payment vectors."""

    def __init__(self, num_agents: int) -> None:
        if num_agents < 1:
            raise ValueError("need at least one agent")
        self.num_agents = num_agents
        self._claims: Dict[int, Tuple[float, ...]] = {}

    def submit_claim(self, agent: int, payments: Sequence[float]) -> None:
        """Record one agent's claimed payment vector."""
        if not 0 <= agent < self.num_agents:
            raise ValueError("invalid agent %d" % agent)
        if len(payments) != self.num_agents:
            raise ValueError(
                "claim must cover all %d agents, got %d entries"
                % (self.num_agents, len(payments))
            )
        self._claims[agent] = tuple(float(x) for x in payments)

    def decide(self) -> PaymentDecision:
        """Dispense iff every agent submitted the identical vector."""
        if set(self._claims) != set(range(self.num_agents)):
            missing = sorted(set(range(self.num_agents)) - set(self._claims))
            return PaymentDecision(dispensed=False, payments=None,
                                   conflicting_agents=tuple(missing))
        vectors = list(self._claims.values())
        reference = vectors[0]
        if all(vector == reference for vector in vectors):
            return PaymentDecision(dispensed=True, payments=reference,
                                   conflicting_agents=())
        # Identify the minority claim holders for diagnostics.  The
        # majority view is chosen deterministically: highest count first,
        # ties broken by the lexicographically smallest claim vector —
        # never by dict insertion order, so an even split (e.g. 2-2)
        # names the same conflicting agents on every run.
        counts: Dict[Tuple[float, ...], int] = {}
        for vector in vectors:
            counts[vector] = counts.get(vector, 0) + 1
        majority = min(counts, key=lambda vector: (-counts[vector], vector))
        minority_agents = tuple(sorted(
            agent for agent, vector in self._claims.items()
            if vector != majority
        ))
        return PaymentDecision(dispensed=False, payments=None,
                               conflicting_agents=minority_agents)
