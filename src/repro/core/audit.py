"""Passive verification of a DMW execution from its public transcript.

The paper's related-work section highlights the problem of *passively
verifying* that a deployed mechanism execution actually followed the
strategyproof specification (Kang & Parkes [22]; the strategyproof-
computing paradigm of Ng et al. [29]).  DMW is well suited to this: every
protocol value that determines the outcome is either published or
verifiable against published commitments, so a third-party auditor who
merely *reads* the broadcast channel can re-derive the entire outcome and
check every consistency equation — without ever seeing a private share.

:func:`audit_protocol_run` replays the published messages of a completed
:class:`~repro.core.protocol.DMWProtocol` execution:

* completeness of each agent's commitments per task,
* eq. (11) for every published ``(Lambda_i, Psi_i)``,
* eq. (12) first-price resolution over the valid aggregates,
* eq. (13) for every disclosed ``(f, h)`` row,
* eq. (14) winner identification (including tie-breaking),
* eq. (15)+(11) for the winner-excluded aggregates and the second price,
* the payment vector implied by the per-task second prices,

and compares everything against the outcome the participants reported.
The auditor is not cost-constrained, so it verifies everything fully and
ignores the participants' complaint traffic (it re-derives validity from
first principles).

Degraded executions (``docs/RESILIENCE.md``) are audited with the same
public data plus one extra cross-check: a task the participants
*quarantined* must actually be undeterminable from the public transcript.
If the auditor can fully re-derive a quarantined task's winner and second
price, the quarantine decision itself is flagged — honest agents never
quarantine a healthy auction.  Quarantined tasks are excluded from the
assignment/payment comparison (they carry no allocation and no payment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from ..crypto.fastexp import PublicValueCache
from ..crypto.modular import OperationCounter
from .bidding import AgentCommitments
from .outcome import DMWOutcome
from .parameters import DMWParameters
from .resolution import (
    ResolutionError,
    identify_winner,
    resolve_first_price,
    resolve_second_price,
)
from .verification import CheckStats, verify_f_disclosure, verify_lambda_psi

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.message import Message
    from .protocol import DMWProtocol


@dataclass(frozen=True)
class AuditFinding:
    """One problem the auditor found."""

    task: Optional[int]
    check: str
    detail: str


@dataclass
class AuditReport:
    """The auditor's verdict on one execution.

    Attributes
    ----------
    ok:
        True when the transcript is internally consistent *and* matches
        the reported outcome.
    findings:
        Every discrepancy found (empty when ``ok``).
    reconstructed_assignment / reconstructed_payments:
        The outcome the auditor derived independently from public data.
    operations:
        The auditor's own counted modular work (for cost reporting).
    check_stats:
        Pass/fail tallies of every verification equation the auditor
        evaluated (``{"equation:pass|fail": count}``; consumed by the
        observability layer).
    """

    ok: bool
    findings: List[AuditFinding] = field(default_factory=list)
    reconstructed_assignment: Optional[Tuple[int, ...]] = None
    reconstructed_payments: Optional[Tuple[float, ...]] = None
    operations: Dict[str, int] = field(default_factory=dict)
    check_stats: Dict[str, int] = field(default_factory=dict)


class TranscriptAuditor:
    """Re-derives a DMW outcome from published messages only."""

    def __init__(self, parameters: DMWParameters) -> None:
        self.parameters = parameters
        self.counter = OperationCounter()
        # The auditor re-derives everything from public data, so it gets
        # the same public-value memoisation as the participants (its own
        # cache: the auditor never shares state with the audited agents).
        self.cache = PublicValueCache()
        self.check_stats = CheckStats()
        self._findings: List[AuditFinding] = []

    # -- helpers ---------------------------------------------------------------
    def _flag(self, task: Optional[int], check: str, detail: str) -> None:
        self._findings.append(AuditFinding(task=task, check=check,
                                           detail=detail))

    def _published_by_task(self, messages: Iterable["Message"],
                           kind: str) -> Dict[int, Dict[int, object]]:
        """Group one published kind as ``task -> {sender -> payload}``."""
        grouped: Dict[int, Dict[int, object]] = {}
        for message in messages:
            if message.kind != kind:
                continue
            task, payload = message.payload
            grouped.setdefault(task, {})[message.sender] = payload
        return grouped

    # -- the audit -------------------------------------------------------------
    def audit(self, messages: Iterable["Message"], num_tasks: int,
              outcome: Optional[DMWOutcome] = None) -> AuditReport:
        """Audit the published ``messages`` of an execution.

        Parameters
        ----------
        messages:
            The bulletin-board history (``network.published()``).
        num_tasks:
            Number of auctions the execution ran.
        outcome:
            The outcome the participants reported; when given, the
            reconstruction is compared against it.
        """
        n = self.parameters.num_agents
        boards = {
            "commitments": self._published_by_task(messages, "commitments"),
            "lambda_psi": self._published_by_task(messages, "lambda_psi"),
            "f_disclosure": self._published_by_task(messages,
                                                    "f_disclosure"),
            "winner_claim": self._published_by_task(messages,
                                                    "winner_claim"),
            "second_price": self._published_by_task(messages,
                                                    "second_price"),
        }
        quarantined = set()
        if outcome is not None:
            quarantined = set(getattr(outcome, "task_aborts", {}) or {})

        assignment: List[Optional[int]] = [None] * num_tasks
        payments = [0.0] * n

        for task in range(num_tasks):
            if task in quarantined:
                # Cross-check the quarantine decision itself: re-derive
                # silently; success means the participants condemned an
                # auction the public transcript fully determines.
                resolved = self._reconstruct_task(
                    task, boards, lambda *args: None)
                if resolved is not None:
                    self._flag(task, "quarantine",
                               "task was quarantined but its outcome "
                               "(winner %d, second price %d) is fully "
                               "determined by the public transcript"
                               % resolved)
                continue
            resolved = self._reconstruct_task(task, boards, self._flag)
            if resolved is None:
                continue
            winner, second_price = resolved
            assignment[task] = winner
            payments[winner] += second_price

        complete = all(assignment[task] is not None
                       for task in range(num_tasks)
                       if task not in quarantined)
        reconstructed_assignment = tuple(assignment) if complete else None

        if outcome is not None and outcome.completed:
            if reconstructed_assignment is None:
                self._flag(None, "outcome",
                           "participants report success but the transcript "
                           "does not determine every task")
            else:
                if reconstructed_assignment != outcome.schedule.assignment:
                    self._flag(None, "outcome",
                               "reported schedule %s != reconstructed %s"
                               % (outcome.schedule.assignment,
                                  reconstructed_assignment))
                if tuple(payments) != tuple(outcome.payments):
                    self._flag(None, "outcome",
                               "reported payments %s != reconstructed %s"
                               % (outcome.payments, tuple(payments)))

        return AuditReport(
            ok=not self._findings,
            findings=list(self._findings),
            reconstructed_assignment=reconstructed_assignment,
            reconstructed_payments=(tuple(payments)
                                    if reconstructed_assignment is not None
                                    else None),
            operations=self.counter.snapshot(),
            check_stats=self.check_stats.as_dict(),
        )

    def _reconstruct_task(self, task: int,
                          boards: Dict[str, Dict[int, Dict[int, object]]],
                          flag: Callable[[Optional[int], str, str], None]
                          ) -> Optional[Tuple[int, int]]:
        """Re-derive one task's ``(winner, second_price)`` from public data.

        ``flag`` receives every inconsistency (pass :meth:`_flag` to
        collect findings, or a no-op to probe a quarantined task
        silently).  Returns ``None`` when the public transcript does not
        determine the task.
        """
        parameters = self.parameters
        n = parameters.num_agents
        commitments = boards["commitments"].get(task, {})
        if set(commitments) != set(range(n)):
            flag(task, "commitments",
                 "missing commitments from agents %s"
                 % sorted(set(range(n)) - set(commitments)))
            return None
        ordered: List[AgentCommitments] = [commitments[k] for k in range(n)]

        # eq. (11): which aggregates are valid.
        valid_lambdas: Dict[int, int] = {}
        for publisher, (lam, psi) in boards["lambda_psi"].get(task,
                                                              {}).items():
            if verify_lambda_psi(parameters, ordered,
                                 parameters.pseudonyms[publisher],
                                 lam, psi, counter=self.counter,
                                 cache=self.cache,
                                 stats=self.check_stats):
                valid_lambdas[publisher] = lam
            else:
                flag(task, "lambda_psi",
                     "agent %d published inconsistent aggregates"
                     % publisher)

        try:
            first_price, _ = resolve_first_price(parameters, valid_lambdas,
                                                 self.counter, self.cache)
        except ResolutionError as error:
            flag(task, "first_price", str(error))
            return None

        # eq. (13): which disclosure rows are valid.
        valid_rows: Dict[int, Dict[int, tuple]] = {}
        for discloser, row in boards["f_disclosure"].get(task, {}).items():
            if verify_f_disclosure(parameters, ordered,
                                   parameters.pseudonyms[discloser],
                                   row, self.counter, self.cache,
                                   stats=self.check_stats):
                valid_rows[discloser] = row
            else:
                flag(task, "f_disclosure",
                     "agent %d disclosed an inconsistent row" % discloser)

        claimants = sorted(boards["winner_claim"].get(task, {}),
                           key=lambda i: parameters.pseudonyms[i])
        try:
            winner = identify_winner(parameters, first_price, valid_rows,
                                     claimants=claimants or None,
                                     counter=self.counter,
                                     cache=self.cache)
        except ResolutionError as error:
            flag(task, "winner", str(error))
            return None

        valid_excluded: Dict[int, int] = {}
        for publisher, (lam, psi) in boards["second_price"].get(task,
                                                                {}).items():
            if verify_lambda_psi(parameters, ordered,
                                 parameters.pseudonyms[publisher],
                                 lam, psi, exclude=winner,
                                 counter=self.counter,
                                 cache=self.cache,
                                 stats=self.check_stats):
                valid_excluded[publisher] = lam
            else:
                flag(task, "second_price",
                     "agent %d published inconsistent excluded "
                     "aggregates" % publisher)
        try:
            second_price, _ = resolve_second_price(parameters,
                                                   valid_excluded,
                                                   self.counter, self.cache)
        except ResolutionError as error:
            flag(task, "second_price", str(error))
            return None

        return winner, second_price


def audit_protocol_run(protocol: "DMWProtocol",
                       outcome: Optional[DMWOutcome] = None,
                       num_tasks: Optional[int] = None) -> AuditReport:
    """Audit a finished :class:`~repro.core.protocol.DMWProtocol` run.

    Reads only the protocol's bulletin board (published messages); private
    channels are never consulted.
    """
    if num_tasks is None:
        if outcome is not None and outcome.schedule is not None:
            num_tasks = outcome.schedule.num_tasks
        elif outcome is not None:
            num_tasks = (len(outcome.transcripts)
                         + len(getattr(outcome, "task_aborts", {}) or {}))
        else:
            raise ValueError("pass num_tasks or an outcome with transcripts")
    auditor = TranscriptAuditor(protocol.parameters)
    return auditor.audit(protocol.network.published(), num_tasks, outcome)
