"""Phase II of DMW: bid encoding, shares, and commitments.

For task ``T^j``, agent ``A_i`` with bid ``y`` chooses (step II.1) four
random zero-constant-term polynomials over ``Z_q``:

* ``e`` of exact degree ``tau = sigma - y``  (the bid encoding),
* ``f`` of exact degree ``sigma - tau = y``  (the witness used for winner
  identification — its degree *is* the bid),
* ``g`` of degree ``sigma``                  (blinding for the ``O`` commitments),
* ``h`` of degree ``sigma``                  (blinding for ``Q``/``R`` and ``Psi``).

It then sends each agent ``A_k`` the share bundle
``(e(alpha_k), f(alpha_k), g(alpha_k), h(alpha_k))`` over the private
channel (step II.2) and publishes the commitment vectors (step II.3):

* ``O`` — coefficients of the product ``e*f`` blinded by ``g``'s,
* ``Q`` — coefficients of ``e`` blinded by ``h``'s,
* ``R`` — coefficients of ``f`` blinded by ``h``'s

(see DESIGN.md decision 3 for the reconstruction of the garbled ``Q``/``R``
formulas).  Verifying eq. (7) against ``O`` proves ``deg e + deg f = sigma``
with zero constant terms, which binds ``deg f`` (revealed during winner
identification) to the bid hidden in ``deg e``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from ..crypto.commitments import PedersenCommitter, PolynomialCommitment
from ..crypto.modular import NULL_COUNTER, OperationCounter
from ..crypto.polynomials import Polynomial
from ..crypto.secret import SecretInt, local_value
from .parameters import DMWParameters


@dataclass(frozen=True)
class ShareBundle:
    """The four share values one agent sends another for one task.

    All values are elements of ``Z_q`` evaluated at the recipient's
    pseudonym.  Weight: 4 field elements.
    """

    e_value: int
    f_value: int
    g_value: int
    h_value: int

    FIELD_ELEMENTS = 4


@dataclass(frozen=True)
class AgentCommitments:
    """The published commitment vectors ``(O, Q, R)`` of one agent/task.

    Weight: ``3 * sigma`` group elements.
    """

    o_vector: PolynomialCommitment
    q_vector: PolynomialCommitment
    r_vector: PolynomialCommitment

    @property
    def field_elements(self) -> int:
        return (self.o_vector.size + self.q_vector.size + self.r_vector.size)


@dataclass(frozen=True)
class BidPackage:
    """Everything an agent generates for one task's auction.

    ``polynomials`` stay private to the bidding agent; ``commitments`` are
    published; per-recipient bundles come from :meth:`share_bundle_for`.

    ``bid`` is taint-wrapped (:class:`~repro.crypto.secret.Secret`) when
    the ``DMW_SANITIZE=1`` sanitizer mode is active, so it cannot be
    printed or serialized without an audited ``declassify``.
    """

    bid: SecretInt
    e: Polynomial
    f: Polynomial
    g: Polynomial
    h: Polynomial
    commitments: AgentCommitments

    def share_bundle_for(self, pseudonym: int,
                         counter: OperationCounter = NULL_COUNTER
                         ) -> ShareBundle:
        """Evaluate the four polynomials at ``pseudonym`` (step II.2)."""
        return ShareBundle(
            e_value=self.e.evaluate(pseudonym, counter),
            f_value=self.f.evaluate(pseudonym, counter),
            g_value=self.g.evaluate(pseudonym, counter),
            h_value=self.h.evaluate(pseudonym, counter),
        )


def encode_bid(parameters: DMWParameters, bid: SecretInt,
               rng: random.Random,
               counter: OperationCounter = NULL_COUNTER) -> BidPackage:
    """Perform step II.1 for one agent and task.

    Parameters
    ----------
    parameters:
        The published Phase I parameters.
    bid:
        The agent's (possibly untruthful) bid; must be in ``W``.  May be
        taint-wrapped (``Secret``): encoding one's *own* bid into share
        polynomials is owner-local computation, so the raw value is taken
        via :func:`~repro.crypto.secret.local_value`, not ``declassify``.
    rng:
        The agent's private randomness.
    counter:
        The agent's operation meter.

    Returns
    -------
    A :class:`BidPackage` with freshly drawn polynomials and commitments;
    its ``bid`` attribute preserves the taint wrapper.
    """
    raw_bid = local_value(bid)
    parameters.validate_bid(raw_bid)
    q = parameters.group.q
    sigma = parameters.sigma
    tau = parameters.degree_for_bid(raw_bid)
    e = Polynomial.random(tau, q, rng, zero_constant_term=True)
    f = Polynomial.random(sigma - tau, q, rng, zero_constant_term=True)
    g = Polynomial.random(sigma, q, rng, zero_constant_term=True)
    h = Polynomial.random(sigma, q, rng, zero_constant_term=True)
    committer = PedersenCommitter(parameters.group_parameters)
    product = e * f
    commitments = AgentCommitments(
        o_vector=committer.commit_polynomial(product, g, sigma, counter),
        q_vector=committer.commit_polynomial(e, h, sigma, counter),
        r_vector=committer.commit_polynomial(f, h, sigma, counter),
    )
    return BidPackage(bid=bid, e=e, f=f, g=g, h=h, commitments=commitments)


def all_share_bundles(parameters: DMWParameters, package: BidPackage,
                      counter: OperationCounter = NULL_COUNTER
                      ) -> Dict[int, ShareBundle]:
    """Return the bundle for every agent (index -> bundle), own included.

    The agent keeps its own bundle (evaluated at its own pseudonym): the
    aggregate values ``E(alpha_i)`` and ``H(alpha_i)`` it must publish in
    step III.2 include its own polynomials.
    """
    return {
        index: package.share_bundle_for(pseudonym, counter)
        for index, pseudonym in enumerate(parameters.pseudonyms)
    }
