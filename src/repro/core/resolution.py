"""Phase III outcome resolution: first price, winner, second price.

All three resolutions are degree resolutions:

* **first price** (eq. (12)) — on the aggregate ``E = sum_k e_k`` *in the
  exponent*, using the published ``Lambda_i = z1^{E(alpha_i)}``; the degree
  of ``E`` is ``max_k tau_k = sigma - min_k y_k``, so the first passing
  candidate yields ``y* = sigma - tau*``;
* **winner** (eq. (14)) — on each agent's ``f_l`` in plaintext, using the
  disclosed share rows: the winner is the agent whose ``f`` has degree
  exactly ``y*`` (its bid), ties broken by smallest pseudonym;
* **second price** (eq. (15) + (12)) — as the first price, but on
  ``Lambda'_i = Lambda_i / z1^{e_*(alpha_i)}``, the aggregates with the
  winner divided out.

Resolution never requires *specific* agents' values: any ``degree + 1``
valid points do (that is how the protocol routes around deviators whose
published values fail verification, per the Theorem 4 discussion).  A
:class:`ResolutionError` is raised when fewer valid points remain than the
threshold needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto.fastexp import PublicValueCache
from ..crypto.interpolation import resolve_degree, resolve_degree_in_exponent
from ..crypto.modular import NULL_COUNTER, OperationCounter
from .exceptions import DMWError
from .parameters import DMWParameters


class ResolutionError(DMWError):
    """Raised when a degree resolution cannot be completed."""


def resolve_first_price(parameters: DMWParameters,
                        lambda_values: Dict[int, int],
                        counter: OperationCounter = NULL_COUNTER,
                        cache: Optional[PublicValueCache] = None
                        ) -> Tuple[int, int]:
    """Resolve the first price from the valid published ``Lambda`` values.

    Parameters
    ----------
    lambda_values:
        ``agent index -> Lambda_i`` for agents whose published values passed
        eq. (11).  Invalid/withheld publishers are simply absent.
    cache:
        Optional per-execution :class:`PublicValueCache`: every honest
        agent resolves the same public inputs, so the resolution result is
        memoised (the analytic cost is still charged per agent).

    Returns
    -------
    (first_price, degree):
        ``y* = sigma - tau*`` and the resolved degree ``tau*``.

    Raises
    ------
    ResolutionError
        If too few valid values remain (fewer than ``tau* + 1`` for every
        candidate ``tau*``) or no candidate degree passes.
    """
    indices = sorted(lambda_values)
    points = [parameters.pseudonyms[i] for i in indices]
    values = [lambda_values[i] for i in indices]
    candidates = parameters.first_price_degree_candidates()
    if len(points) < min(candidates) + 1:
        raise ResolutionError(
            "only %d valid Lambda values; cannot resolve any candidate degree"
            % len(points)
        )
    degree = resolve_degree_in_exponent(parameters.group, points, values,
                                        candidates=candidates,
                                        counter=counter, cache=cache)
    if degree is None:
        raise ResolutionError(
            "no candidate degree passed first-price resolution (corrupted "
            "aggregate or too few shares)"
        )
    return parameters.bid_for_degree(degree), degree


def identify_winner(parameters: DMWParameters,
                    first_price: int,
                    disclosed_rows: Dict[int, Dict[int, Tuple[int, int]]],
                    claimants: Optional[Sequence[int]] = None,
                    counter: OperationCounter = NULL_COUNTER,
                    cache: Optional[PublicValueCache] = None) -> int:
    """Eq. (14): find the (unique, lowest-pseudonym) winner.

    Parameters
    ----------
    first_price:
        ``y*`` from :func:`resolve_first_price`.
    disclosed_rows:
        ``discloser index -> {agent index -> (f value, h value)}`` for the
        rows that passed :func:`~repro.core.verification.verify_f_disclosure`.
    claimants:
        Agents that announced ``bid == y*``.  Their ``f``-polynomials are
        tested first (each test costs only ``O(y*^2)`` multiplications);
        if no claim survives — a claimant lied, or the true winner stayed
        silent — the test falls back to scanning every agent, which is
        always possible because the ``f``-shares are already public.
        ``None`` (or an exhausted claim list) means "scan everyone".

    Returns
    -------
    The winning agent's index.

    Raises
    ------
    ResolutionError
        If fewer than ``first_price + 1`` valid rows exist, or no agent's
        ``f`` resolves to degree ``y*`` (which contradicts a valid first
        price and indicates corruption).
    """
    needed = first_price + 1
    disclosers = sorted(disclosed_rows,
                        key=lambda k: parameters.pseudonyms[k])[:needed]
    if len(disclosers) < needed:
        raise ResolutionError(
            "winner identification needs %d valid disclosure rows, got %d"
            % (needed, len(disclosed_rows))
        )
    points = [parameters.pseudonyms[k] for k in disclosers]

    def has_degree_y_star(agent: int) -> bool:
        values = [disclosed_rows[k][agent][0] for k in disclosers]
        resolved = resolve_degree(points, values, parameters.group.q,
                                  candidates=[first_price], counter=counter,
                                  cache=cache)
        return resolved == first_price

    if claimants is not None:
        winners = [agent for agent in claimants if has_degree_y_star(agent)]
        if winners:
            return min(winners, key=lambda i: parameters.pseudonyms[i])
        # No claim survived: fall through to the exhaustive scan.
    winners: List[int] = [agent for agent in range(parameters.num_agents)
                          if has_degree_y_star(agent)]
    if not winners:
        raise ResolutionError(
            "no agent's f-polynomial has degree y*=%d; inconsistent transcript"
            % first_price
        )
    # More than one passer means a tie on the minimum bid; the smallest
    # pseudonym wins (step III.3).
    return min(winners, key=lambda i: parameters.pseudonyms[i])


def resolve_second_price(parameters: DMWParameters,
                         lambda_values_excluding_winner: Dict[int, int],
                         counter: OperationCounter = NULL_COUNTER,
                         cache: Optional[PublicValueCache] = None
                         ) -> Tuple[int, int]:
    """Resolve ``y**`` from the winner-excluded aggregates (steps III.4).

    Same mechanics as :func:`resolve_first_price`; the caller supplies the
    verified ``Lambda'_i`` values.
    """
    return resolve_first_price(parameters, lambda_values_excluding_winner,
                               counter, cache)
