"""Phase III verification checks (eqs. (7)-(9), (11), (13) and (15)).

Every check here is something *any* agent can compute from public
commitments plus the values it received or that were published — the
protocol's entire security rests on honest agents running these and
terminating on failure.

Because the inputs are public, the derived quantities (``Gamma_{i,k}``,
``Phi_{i,k}``, commitment evaluations) are identical for every verifier.
Each check therefore accepts an optional per-execution
:class:`~repro.crypto.fastexp.PublicValueCache` so the ``O(n^2)``
verification loops compute each public value exactly once per execution;
the *counted* cost charged to each agent's
:class:`~repro.crypto.modular.OperationCounter` is the paper's analytic
schedule regardless (cache hits replay it), keeping Theorem 12 accounting
exact.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..crypto import fastexp
from ..crypto.commitments import verify_share_batch
from ..crypto.fastexp import PublicValueCache
from ..crypto.modular import NULL_COUNTER, OperationCounter
from .bidding import AgentCommitments, ShareBundle
from .parameters import DMWParameters


class CheckStats:
    """Pass/fail tallies of verification-equation evaluations.

    One instance per verifier (each :class:`~repro.core.agent.DMWAgent`
    and the :class:`~repro.core.audit.TranscriptAuditor` own one); the
    observability layer exports the tallies as
    ``dmw_verification_checks_total{agent=..., equation=..., result=...}``.
    Recording is two dict operations per verification — it never touches
    the :class:`~repro.crypto.modular.OperationCounter` accounting.

    Equation names: ``share_bundle`` (eqs. 7-9), ``lambda_psi`` (eq. 11
    and its eq.-15 excluding variant), ``f_disclosure`` (eq. 13).
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict = {}

    def record(self, equation: str, passed: bool) -> None:
        key = (equation, bool(passed))
        self._counts[key] = self._counts.get(key, 0) + 1

    def items(self) -> List[Tuple[Tuple[str, bool], int]]:
        """Sorted ``((equation, passed), count)`` pairs."""
        return sorted(self._counts.items())

    def __iter__(self) -> Iterator[Tuple[Tuple[str, bool], int]]:
        return iter(self.items())

    def total(self, equation: Optional[str] = None,
              passed: Optional[bool] = None) -> int:
        """Total checks, optionally filtered by equation and/or verdict."""
        return sum(count for (eq, ok), count in self._counts.items()
                   if (equation is None or eq == equation)
                   and (passed is None or ok == passed))

    def as_dict(self) -> Dict[str, int]:
        """Flat ``{"equation:pass|fail": count}`` summary (JSON-friendly)."""
        return {"%s:%s" % (eq, "pass" if ok else "fail"): count
                for (eq, ok), count in self.items()}

    def merge(self, entries: Sequence[Tuple[Tuple[str, bool], int]]) -> None:
        """Fold :meth:`items`-shaped tallies into this instance.

        Used by the process-pool driver (:mod:`repro.parallel`) to fold
        each shard's verification tallies back into the parent agents so
        the merged observability export matches the sequential driver.
        """
        for (equation, passed), count in entries:
            key = (equation, bool(passed))
            self._counts[key] = self._counts.get(key, 0) + count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CheckStats(%r)" % (self.as_dict(),)


def verify_share_bundle(parameters: DMWParameters,
                        commitments: AgentCommitments,
                        pseudonym: int,
                        bundle: ShareBundle,
                        counter: OperationCounter = NULL_COUNTER,
                        cache: Optional[PublicValueCache] = None,
                        stats: Optional[CheckStats] = None,
                        rng: Optional[random.Random] = None) -> bool:
    """Step III.1: check a received bundle against public commitments.

    Verifies, at the receiver's pseudonym ``alpha``:

    * eq. (7): ``z1^{e(a) f(a)} z2^{g(a)} = prod O_l^{a^l}``
      (the product polynomial has degree at most ``sigma`` and zero
      constant/linear terms — this binds ``deg e + deg f = sigma``);
    * eq. (8): ``z1^{e(a)} z2^{h(a)} = prod Q_l^{a^l}``;
    * eq. (9): ``z1^{f(a)} z2^{h(a)} = prod R_l^{a^l}``.

    When ``parameters.share_verification_mode == "batched"`` and an
    ``rng`` is supplied, the three equations are folded into one
    random-linear-combination multi-exponentiation
    (:func:`~repro.crypto.commitments.verify_share_batch`): same counted
    cost, same verdicts up to a ``1/q`` soundness error, one combined
    Straus chain instead of three openings plus three evaluations.  The
    batched path is an execution fast path, so it defers to the
    per-share listing under :func:`~repro.crypto.fastexp.naive_mode`.
    """
    q = parameters.group.q
    product_value = (bundle.e_value * bundle.f_value) % q
    if (parameters.share_verification_mode == "batched"
            and rng is not None and fastexp.enabled()):
        coefficients = [rng.randrange(1, q) for _ in range(3)]
        valid = verify_share_batch(
            [commitments.o_vector, commitments.q_vector,
             commitments.r_vector],
            pseudonym,
            [(product_value, bundle.g_value),
             (bundle.e_value, bundle.h_value),
             (bundle.f_value, bundle.h_value)],
            coefficients, counter, cache,
        )
    else:
        valid = (
            commitments.o_vector.verify_share(pseudonym, product_value,
                                              bundle.g_value, counter, cache)
            and commitments.q_vector.verify_share(pseudonym, bundle.e_value,
                                                  bundle.h_value, counter,
                                                  cache)
            and commitments.r_vector.verify_share(pseudonym, bundle.f_value,
                                                  bundle.h_value, counter,
                                                  cache)
        )
    if stats is not None:
        stats.record("share_bundle", valid)
    return valid


def gamma_value(parameters: DMWParameters, commitments: AgentCommitments,
                pseudonym: int,
                counter: OperationCounter = NULL_COUNTER,
                cache: Optional[PublicValueCache] = None) -> int:
    """Return ``Gamma_{i,k} = prod_l Q_{k,l}^{alpha_i^l}``.

    Publicly computable; equals ``z1^{e_k(alpha_i)} z2^{h_k(alpha_i)}``
    when agent ``k`` is honest.
    """
    return commitments.q_vector.evaluate(pseudonym, counter, cache)


def phi_value(parameters: DMWParameters, commitments: AgentCommitments,
              pseudonym: int,
              counter: OperationCounter = NULL_COUNTER,
              cache: Optional[PublicValueCache] = None) -> int:
    """Return ``Phi_{i,k} = prod_l R_{k,l}^{alpha_i^l}``.

    Publicly computable; equals ``z1^{f_k(alpha_i)} z2^{h_k(alpha_i)}``
    when agent ``k`` is honest.
    """
    return commitments.r_vector.evaluate(pseudonym, counter, cache)


def verify_lambda_psi(parameters: DMWParameters,
                      all_commitments: Sequence[AgentCommitments],
                      publisher_pseudonym: int,
                      lambda_value: int,
                      psi_value_: int,
                      exclude: Optional[int] = None,
                      counter: OperationCounter = NULL_COUNTER,
                      cache: Optional[PublicValueCache] = None,
                      stats: Optional[CheckStats] = None) -> bool:
    """Eq. (11) (and its eq.-(15) excluding variant).

    Checks ``prod_k Gamma_{i,k} = Lambda_i * Psi_i`` at the publisher's
    pseudonym ``alpha_i``, where the product runs over all agents except
    ``exclude`` (used for the second-price values, which divide the winner
    out of the aggregates).
    """
    group = parameters.group
    product = 1
    for index, commitments in enumerate(all_commitments):
        if index == exclude:
            continue
        product = group.mul(
            product,
            gamma_value(parameters, commitments, publisher_pseudonym, counter,
                        cache),
            counter,
        )
    valid = product == group.mul(lambda_value, psi_value_, counter)
    if stats is not None:
        stats.record("lambda_psi", valid)
    return valid


def verify_f_disclosure(parameters: DMWParameters,
                        all_commitments: Sequence[AgentCommitments],
                        discloser_pseudonym: int,
                        disclosed: Dict[int, Tuple[int, int]],
                        counter: OperationCounter = NULL_COUNTER,
                        cache: Optional[PublicValueCache] = None,
                        stats: Optional[CheckStats] = None) -> bool:
    """Verify one agent's winner-identification disclosure (eq. (13)).

    ``disclosed`` maps each agent index ``l`` to the pair
    ``(f_l(alpha_k), h_l(alpha_k))`` the discloser ``A_k`` claims to hold.
    Each pair must open ``Phi_{k,l}``; a complete and valid row lets anyone
    run plain degree resolution on every ``f_l``.
    """
    valid = _f_disclosure_consistent(parameters, all_commitments,
                                     discloser_pseudonym, disclosed,
                                     counter, cache)
    if stats is not None:
        stats.record("f_disclosure", valid)
    return valid


def _f_disclosure_consistent(parameters: DMWParameters,
                             all_commitments: Sequence[AgentCommitments],
                             discloser_pseudonym: int,
                             disclosed: Dict[int, Tuple[int, int]],
                             counter: OperationCounter,
                             cache: Optional[PublicValueCache]) -> bool:
    if set(disclosed) != set(range(len(all_commitments))):
        return False
    for index, commitments in enumerate(all_commitments):
        f_value, h_value = disclosed[index]
        expected = phi_value(parameters, commitments, discloser_pseudonym,
                             counter, cache)
        opened = parameters.group_parameters.open_value(f_value, h_value,
                                                        counter)
        if opened != expected:
            return False
    return True
