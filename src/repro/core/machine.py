"""Per-agent receive/act/send state machines for the DMW driver.

Each :class:`AgentMachine` wraps one :class:`~repro.core.agent.DMWAgent`
and owns every *per-agent* protocol step, grouped by the three roles a
round barrier imposes:

* **send** — queue this round's outgoing messages on the transport
  (``send_bidding``, ``send_aggregates``, ``send_disclosure``,
  ``send_second_price``, ``send_payment_claim``);
* **receive** — absorb the machine's own inbox after the barrier
  (``recv_bidding`` for private shares and per-agent commitment state,
  ``collect_published``/``collect_claims`` for published kinds);
* **act** — the local computation between barriers (``act_*``: share
  checks, validation, arbitration, resolution), which never touches the
  transport at all.

Published values live on the paper's bulletin board: every broadcast
reaches every other participant, so the driver reconstructs the shared
board view by merging what each machine drained — the merge is driver
bookkeeping (a bulletin-board service in a deployment), not agent logic,
which is why ``collect_published`` writes into a shared mapping instead
of keeping per-machine copies.  Under fault injection this preserves the
historical semantics exactly: a broadcast copy dropped on one link is
still visible in the merged view if any other participant received it.

The machine contains no mechanism logic of its own — every decision is
made by the wrapped agent, and the agent never sees the transport
(``dmwlint`` rule DMW008 enforces that agent and machine code reach the
wire only through the transport parameter handed to the send/receive
steps).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..network.message import Message
from ..network.transport import Transport
from .agent import DMWAgent
from .exceptions import ProtocolAbort

#: ``boards[task][sender] -> published value`` (the merged bulletin view).
Boards = Dict[int, Dict[int, Any]]


class AgentMachine:
    """One agent's explicit receive/act/send state machine."""

    def __init__(self, agent: DMWAgent) -> None:
        self.agent = agent
        self.index = agent.index

    # -- send steps -----------------------------------------------------------
    def send_bidding(self, task: int, transport: Transport) -> None:
        """Phase II: publish commitments, unicast the private shares."""
        commitments, bundles = self.agent.begin_task(task)
        if commitments is not None:
            transport.publish(self.index, "commitments", (task, commitments),
                              field_elements=commitments.field_elements)
        for recipient, bundle in bundles.items():
            if bundle is None:
                continue
            transport.send(self.index, recipient, "share_bundle",
                           (task, bundle),
                           field_elements=bundle.FIELD_ELEMENTS)

    def send_aggregates(self, task: int, transport: Transport) -> None:
        """Step III.2: publish ``(Lambda_i, Psi_i)``."""
        published = self.agent.publish_aggregates(task)
        if published is not None:
            transport.publish(self.index, "lambda_psi", (task, published),
                              field_elements=2)

    def send_disclosure(self, task: int, transport: Transport,
                        num_agents: int) -> None:
        """Step III.3: publish the ``(f, h)`` row and any winner claim."""
        row = self.agent.disclose_f_shares(task)
        if row is not None:
            transport.publish(self.index, "f_disclosure", (task, row),
                              field_elements=2 * num_agents)
        if self.agent.claim_winnership(task):
            transport.publish(self.index, "winner_claim", (task, True),
                              field_elements=1)

    def send_second_price(self, task: int, transport: Transport) -> None:
        """Step III.4: publish the winner-excluded aggregates."""
        published = self.agent.publish_excluded_aggregates(task)
        if published is not None:
            transport.publish(self.index, "second_price", (task, published),
                              field_elements=2)

    def send_payment_claim(self, transport: Transport,
                           infrastructure_id: int, num_agents: int,
                           completed_tasks: Optional[List[int]] = None
                           ) -> None:
        """Phase IV: unicast the payment vector to the escrow endpoint.

        ``completed_tasks=None`` keeps the historical no-argument call
        (the signature deviant subclasses override); a
        :class:`ProtocolAbort` raised by the agent propagates to the
        driver.
        """
        if completed_tasks is None:
            claim = self.agent.payment_claim()
        else:
            claim = self.agent.payment_claim(completed_tasks)
        if claim is not None:
            transport.send(self.index, infrastructure_id, "payment_claim",
                           claim, field_elements=num_agents)

    # -- receive steps --------------------------------------------------------
    def recv_bidding(self, transport: Transport) -> None:
        """Absorb the bidding round: commitments, then private bundles."""
        for message in transport.receive(self.index, "commitments"):
            message_task, commitments = message.payload
            self.agent.receive_commitments(message_task, message.sender,
                                           commitments)
        for message in transport.receive(self.index, "share_bundle"):
            message_task, bundle = message.payload
            self.agent.receive_bundle(message_task, message.sender, bundle)

    def collect_published(self, kind: str, transport: Transport,
                          boards: Boards) -> None:
        """Drain one published kind into the merged bulletin-board view."""
        for message in transport.receive(self.index, kind):
            message_task, value = message.payload
            boards.setdefault(message_task, {})[message.sender] = value

    def collect_claims(self, transport: Transport,
                       claims_by_task: Dict[int, List[int]]) -> None:
        """Drain winner claims into the per-task claimant lists."""
        for message in transport.receive(self.index, "winner_claim"):
            message_task, _ = message.payload
            claims_by_task.setdefault(message_task, []).append(message.sender)

    def drain(self, kind: str, transport: Transport) -> List[Message]:
        """Drain one raw kind (complaint rounds, driver-level merging)."""
        return transport.receive(self.index, kind)

    # -- act steps ------------------------------------------------------------
    def act_check_shares(self, task: int) -> Optional[ProtocolAbort]:
        return self.agent.check_shares(task)

    def act_validate_aggregates(self, task: int,
                                board: Dict[int, Any]) -> List[int]:
        return self.agent.validate_aggregates(task, board)

    def act_arbitrate_aggregates(self, task: int, board: Dict[int, Any],
                                 accused: Sequence[int]) -> None:
        self.agent.arbitrate_aggregates(task, board, accused)

    def act_resolve_first(self, task: int) -> None:
        self.agent.resolve_first(task)

    def act_validate_disclosures(self, task: int,
                                 rows: Dict[int, Any]) -> List[int]:
        return self.agent.validate_disclosures(task, rows)

    def act_arbitrate_disclosures(self, task: int, rows: Dict[int, Any],
                                  accused: Sequence[int]) -> None:
        self.agent.arbitrate_disclosures(task, rows, accused)

    def act_find_winner(self, task: int,
                        claimants: Sequence[int]) -> None:
        self.agent.find_winner(task, claimants)

    def act_validate_excluded(self, task: int,
                              board: Dict[int, Any]) -> List[int]:
        return self.agent.validate_excluded_aggregates(task, board)

    def act_arbitrate_excluded(self, task: int, board: Dict[int, Any],
                               accused: Sequence[int]) -> None:
        self.agent.arbitrate_excluded_aggregates(task, board, accused)

    def act_resolve_second(self, task: int) -> None:
        self.agent.resolve_second(task)
