"""The DMW protocol orchestrator: Phases I-IV over a pluggable transport.

:class:`DMWProtocol` drives one :class:`~repro.core.machine.AgentMachine`
per :class:`~repro.core.agent.DMWAgent` through the four phases of the
mechanism as explicit receive/act/send state machines, moving every value
over a :class:`~repro.network.transport.Transport` so communication is
*counted*, not assumed.  The default transport wraps the in-process
:class:`~repro.network.simulator.SynchronousNetwork`; the asyncio-socket
transport runs the same state machines over localhost TCP (see
``docs/TRANSPORTS.md``).  The orchestrator is a stand-in for lockstep
execution: it contains no mechanism logic of its own — every decision is
made inside an agent method — and merely sequences the rounds that the
paper's implicit synchronization barriers (step II.4) impose.

Message kinds (matching Fig. 2 top to bottom):

========================  =========================================  ============
kind                      content                                    field elems
========================  =========================================  ============
``share_bundle``          private ``(e, f, g, h)`` shares             4
``commitments``           published ``(O, Q, R)`` vectors             ``3 sigma``
``lambda_psi``            published ``(Lambda_i, Psi_i)``             2
``f_disclosure``          published ``(f, h)`` share row              ``2n``
``winner_claim``          published candidacy announcement            1
``second_price``          published ``(Lambda'_i, Psi'_i)``           2
``payment_claim``         vector sent to the payment escrow           ``n``
``*_complaint``           accusations (only under attack)             #accused
========================  =========================================  ============

Strong communication compatibility (Theorem 3) is vacuous in this model:
the network is obedient and no agent forwards another's messages — every
transmission goes directly from its producer to its consumers.

Termination semantics: when any agent aborts (a failed verification, a
short resolution, or a payment conflict), the entire execution is void —
no allocation, no payments, utility zero for everyone — matching the
proofs of Theorems 4 and 8.

Graceful degradation (``execute(..., degraded=True)``) relaxes the
all-or-nothing rule at *task* granularity while keeping it at *claim*
granularity: the paper's auctions are "parallel and independent", so an
abort provoked inside task ``t``'s auction condemns only that auction —
the task is **quarantined** (no allocation, no payment for it, the abort
recorded in :attr:`DMWOutcome.task_aborts`) and every other task proceeds
exactly as it would have in a fault-free run.  A payment-phase conflict
still voids the whole execution: the escrow's unanimity rule is what
keeps a false claim from ever costing an honest agent, and it has no
per-task structure to degrade along.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import os
import random
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Set, Tuple, Union)

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from .checkpoint import ProtocolCheckpoint

from ..crypto.fastexp import PublicValueCache
from ..network.faults import FaultPlan
from ..network.simulator import SynchronousNetwork
from ..network.transport import (InProcessTransport, Transport,
                                 create_transport)
from ..obs.flight import FlightRecorder
from ..obs.spans import (
    KIND_RUN,
    KIND_TASK,
    NULL_RECORDER,
    PAYMENTS_PHASE,
    SpanRecorder,
)
from ..scheduling.problem import SchedulingProblem
from ..scheduling.schedule import PartialSchedule, Schedule
from .agent import DMWAgent
from .exceptions import ParameterError, ProtocolAbort
from .machine import AgentMachine
from .outcome import AuctionTranscript, DMWOutcome
from .parameters import DMWParameters
from .payments import PaymentInfrastructure
from .resolution import ResolutionError
from .trace import NULL_TRACE, ProtocolTrace


class DMWProtocol:
    """One DMW execution over ``m`` tasks.

    Parameters
    ----------
    parameters:
        The published Phase I parameters.
    agents:
        One agent per pseudonym, honest or deviating, in index order.
    fault_plan:
        Optional substrate fault injection.
    observer:
        Optional :class:`~repro.obs.spans.SpanRecorder`; when given, the
        drivers emit nested ``run -> task -> phase`` spans whose
        operation/network deltas partition the execution totals exactly
        (see ``docs/OBSERVABILITY.md``).  Defaults to the allocation-free
        :data:`~repro.obs.spans.NULL_RECORDER`.
    """

    def __init__(self, parameters: DMWParameters,
                 agents: Sequence[DMWAgent],
                 fault_plan: Optional[FaultPlan] = None,
                 record_deliveries: bool = False,
                 network: Optional[SynchronousNetwork] = None,
                 trace: Optional[ProtocolTrace] = None,
                 observer: Optional[SpanRecorder] = None,
                 flight: Optional[FlightRecorder] = None,
                 transport: Optional[Transport] = None) -> None:
        if len(agents) != parameters.num_agents:
            raise ParameterError(
                "got %d agents for %d pseudonyms"
                % (len(agents), parameters.num_agents)
            )
        for index, agent in enumerate(agents):
            if agent.index != index:
                raise ParameterError(
                    "agent at position %d has index %d" % (index, agent.index)
                )
        self.parameters = parameters
        self.agents = list(agents)
        #: One receive/act/send state machine per agent, stepped by the
        #: phase drivers through the round barrier of ``self.transport``.
        self.machines = [AgentMachine(agent) for agent in self.agents]
        # Participant n is the payment infrastructure's network endpoint.
        if transport is not None:
            if network is not None:
                raise ParameterError(
                    "pass either a network or a transport, not both")
            view = transport.network_view()
            if view.num_agents != parameters.num_agents or \
                    view.num_participants != parameters.num_agents + 1:
                raise ParameterError(
                    "supplied transport must carry n agents plus the "
                    "payment infrastructure endpoint"
                )
            self.transport = transport
            # ``self.network`` stays the duck-typed state view so
            # checkpoints, the process pool, and observability bindings
            # remain transport-agnostic.
            self.network = view
        elif network is not None:
            if network.num_agents != parameters.num_agents or \
                    network.num_participants != parameters.num_agents + 1:
                raise ParameterError(
                    "supplied network must have n agents plus the payment "
                    "infrastructure endpoint"
                )
            self.network = network
            self.transport = InProcessTransport(network)
        else:
            self.network = SynchronousNetwork(
                parameters.num_agents, fault_plan=fault_plan,
                extra_participants=1, record_deliveries=record_deliveries,
            )
            self.transport = InProcessTransport(self.network)
        # DMW's published values are part of the audit trail the escrow
        # may later need, so the payment endpoint is *explicitly* included
        # in every broadcast (n expanded copies: n - 1 agents plus the
        # endpoint — the accounting the Theorem 11 tests pin down).
        self.network.broadcast_to_extras = True
        self.infrastructure = PaymentInfrastructure(parameters.num_agents)
        self.trace = trace if trace is not None else NULL_TRACE
        self.observer = observer if observer is not None else NULL_RECORDER
        # The network emits per-round events through the same recorder.
        self.network.observer = self.observer
        # Flight recorder: install the supplied one on the network, or
        # adopt whatever the (possibly caller-built) network carries; the
        # default is the allocation-free null recorder.
        if flight is not None:
            self.network.flight = flight
        self.flight = self.network.flight
        if self.flight.enabled and self.observer.enabled:
            # Share the span recorder's clock epoch and owning-span ids.
            self.flight.span_source = self.observer
        self._transcripts: List[AuctionTranscript] = []
        self._task_aborts: Dict[int, ProtocolAbort] = {}
        self._shared_cache: Optional[PublicValueCache] = None
        self._degraded = False
        # Process-pool driver state: the merged per-shard cache statistics
        # (shards use per-task caches, so the shared cache's own counters
        # are not the execution's cache_stats) and the driver metadata
        # attached to the outcome's ``parallelism`` section.
        self._cache_stats_override: Optional[Dict[str, int]] = None
        self._parallelism: Dict[str, Any] = {}

    # -- helpers --------------------------------------------------------------
    @property
    def _infrastructure_id(self) -> int:
        return self.parameters.num_agents

    def _reference_agent(self) -> DMWAgent:
        """The lowest-indexed non-deviating agent (transcript source).

        Honest agents compute identical resolution results from the public
        transcript; the reference choice is bookkeeping, not protocol.
        """
        for agent in self.agents:
            if not getattr(agent, "is_deviant", False):
                return agent
        return self.agents[0]

    def _void(self, abort: ProtocolAbort) -> DMWOutcome:
        self.trace.record("abort", task=abort.task, phase=abort.phase,
                          reason=abort.reason,
                          detected_by=abort.detected_by,
                          offender=abort.offender)
        if self.observer.enabled:
            self.observer.event("abort", task=abort.task, phase=abort.phase,
                                reason=abort.reason,
                                detected_by=abort.detected_by,
                                offender=abort.offender)
        if self.flight.enabled:
            self.flight.abort_dump("abort: %s (task=%s phase=%s)"
                                   % (abort.reason, abort.task, abort.phase))
        return DMWOutcome(
            completed=False, schedule=None, payments=None,
            transcripts=list(self._transcripts), abort=abort,
            network_metrics=self.network.metrics,
            agent_operations=[agent.counter.snapshot()
                              for agent in self.agents],
            cache_stats=self._execution_cache_stats(),
            degraded=self._degraded,
            task_aborts=dict(self._task_aborts),
            parallelism=dict(self._parallelism),
        )

    def _execution_cache_stats(self) -> Dict[str, int]:
        """The outcome's ``cache_stats``: merged shard sums (pool driver)
        or the shared execution cache's own tallies (in-process drivers)."""
        if self._cache_stats_override is not None:
            return dict(self._cache_stats_override)
        if self._shared_cache is not None:
            return self._shared_cache.stats()
        return {}

    def _quarantine(self, task: int, abort: ProtocolAbort) -> None:
        """Degraded mode: condemn one auction instead of the whole run."""
        self._task_aborts[task] = abort
        self.trace.record("task_quarantined", task=task, phase=abort.phase,
                          reason=abort.reason,
                          detected_by=abort.detected_by,
                          offender=abort.offender)
        if self.observer.enabled:
            self.observer.event("task_quarantined", task=task,
                                phase=abort.phase, reason=abort.reason,
                                detected_by=abort.detected_by,
                                offender=abort.offender)
        if self.flight.enabled:
            self.flight.abort_dump("task_quarantined: task %d (%s)"
                                   % (task, abort.reason))

    def _fail_task(self, task: int, abort: ProtocolAbort,
                   active: List[int]) -> Optional[ProtocolAbort]:
        """Handle a per-task abort inside a parallel phase driver.

        Strict mode returns the abort (voiding the run); degraded mode
        quarantines the task, removes it from the active set, and lets the
        remaining auctions continue.
        """
        if not self._degraded:
            return abort
        self._quarantine(task, abort)
        active.remove(task)
        return None

    def _write_checkpoint(self, path: str, num_tasks: int,
                          next_task: int) -> None:
        """Persist a resume point at the current auction boundary."""
        # Imported lazily: serialization depends on core modules, so a
        # top-level import here would be circular.
        from ..serialization import save_checkpoint
        from .checkpoint import ProtocolCheckpoint
        checkpoint = ProtocolCheckpoint.capture(self, num_tasks, next_task)
        save_checkpoint(checkpoint, path)
        self.trace.record("checkpoint_written", next_task=next_task)
        if self.observer.enabled:
            self.observer.event("checkpoint_written", next_task=next_task)

    def _summed_operations(self) -> Dict[str, int]:
        """Sum of every agent's counter snapshot (the span ops source)."""
        totals: Dict[str, int] = {}
        for agent in self.agents:
            for key, value in agent.counter.snapshot().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- phase drivers ------------------------------------------------------------
    # Each phase is one pass of the receive/act/send state machines: every
    # machine queues its sends, the transport steps one round barrier, and
    # every machine absorbs its inbox before the act steps run.
    def _run_bidding(self, task: int) -> None:
        """Phase II: everyone encodes, sends bundles, publishes commitments."""
        for machine in self.machines:
            machine.send_bidding(task, self.transport)
        self.transport.step()
        for machine in self.machines:
            machine.recv_bidding(self.transport)

    def _run_share_verification(self, task: int) -> Optional[ProtocolAbort]:
        """Step III.1 for every agent; any abort voids the execution."""
        for machine in self.machines:
            abort = machine.act_check_shares(task)
            if abort is not None:
                return abort
        return None

    def _collect_board(self, task: int, kind: str) -> Dict[int, object]:
        """Drain one published-kind from every inbox into a shared view.

        All broadcasts reach every other agent, so merging what each
        machine drained reconstructs the common bulletin-board view
        (including each publisher's own entry).
        """
        boards: Dict[int, Dict[int, object]] = {}
        for machine in self.machines:
            machine.collect_published(kind, self.transport, boards)
        return boards.get(task, {})

    def _run_complaint_round(self, task: int, kind: str,
                             complaints_by_agent: Dict[int, List[int]]
                             ) -> List[int]:
        """Broadcast non-empty complaint lists; return the union.

        Skipped entirely (no extra round, no messages) when nobody
        complains — the honest-path common case, which keeps the protocol
        at the Theorem 11 message budget.
        """
        if not any(complaints_by_agent.values()):
            return []
        for agent_index, complaints in complaints_by_agent.items():
            if complaints:
                self.transport.publish(agent_index, kind, (task, complaints),
                                       field_elements=len(complaints))
        self.transport.step()
        union: List[int] = []
        for machine in self.machines:
            for message in machine.drain(kind, self.transport):
                message_task, complained = message.payload
                if message_task == task:
                    union.extend(complained)
        return sorted(set(union))

    def _run_aggregates(self, task: int) -> None:
        """Step III.2: publish, cross-validate, and arbitrate
        ``(Lambda, Psi)``."""
        for machine in self.machines:
            machine.send_aggregates(task, self.transport)
        self.transport.step()
        board = self._collect_board(task, "lambda_psi")
        complaints_by_agent = {
            machine.index: machine.act_validate_aggregates(task, board)
            for machine in self.machines
        }
        self.trace.record("aggregates_published", task=task,
                          publishers=sorted(board))
        union = self._run_complaint_round(task, "aggregate_complaint",
                                          complaints_by_agent)
        if union:
            self.trace.record("complaints", task=task,
                              stage="aggregates", accused=union)
            for machine in self.machines:
                machine.act_arbitrate_aggregates(task, board, union)

    def _run_disclosure(self, task: int) -> List[int]:
        """Step III.3: disclosure set publishes its ``(f, h)`` rows and
        lowest bidders announce winner claims.  Returns the claimant list
        in pseudonym order."""
        for machine in self.machines:
            machine.send_disclosure(task, self.transport,
                                    self.parameters.num_agents)
        self.transport.step()
        row_boards: Dict[int, Dict[int, object]] = {}
        claims_by_task: Dict[int, List[int]] = {}
        for machine in self.machines:
            machine.collect_published("f_disclosure", self.transport,
                                      row_boards)
            machine.collect_claims(self.transport, claims_by_task)
        rows = row_boards.get(task, {})
        claimants = sorted(set(claims_by_task.get(task, [])),
                           key=lambda i: self.parameters.pseudonyms[i])
        complaints_by_agent = {
            machine.index: machine.act_validate_disclosures(task, rows)
            for machine in self.machines
        }
        self.trace.record("disclosures_published", task=task,
                          disclosers=sorted(rows), claimants=claimants)
        union = self._run_complaint_round(task, "disclosure_complaint",
                                          complaints_by_agent)
        if union:
            self.trace.record("complaints", task=task,
                              stage="disclosures", accused=union)
            for machine in self.machines:
                machine.act_arbitrate_disclosures(task, rows, union)
        return claimants

    def _run_second_price(self, task: int) -> None:
        """Step III.4: publish, cross-validate, and arbitrate the
        winner-excluded aggregates."""
        for machine in self.machines:
            machine.send_second_price(task, self.transport)
        self.transport.step()
        board = self._collect_board(task, "second_price")
        complaints_by_agent = {
            machine.index: machine.act_validate_excluded(task, board)
            for machine in self.machines
        }
        union = self._run_complaint_round(task, "second_price_complaint",
                                          complaints_by_agent)
        if union:
            self.trace.record("complaints", task=task,
                              stage="second_price", accused=union)
            for machine in self.machines:
                machine.act_arbitrate_excluded(task, board, union)

    def _run_auction(self, task: int) -> Optional[ProtocolAbort]:
        """Run the full distributed Vickrey auction for one task."""
        self.trace.record("auction_start", task=task)
        if self.flight.enabled:
            self.flight.current_task = task
        try:
            with self.observer.span("task", kind=KIND_TASK, task=task):
                return self._run_auction_phases(task)
        finally:
            if self.flight.enabled:
                self.flight.current_task = None

    def _run_auction_phases(self, task: int) -> Optional[ProtocolAbort]:
        obs = self.observer
        with obs.span("bidding", task=task):
            self._run_bidding(task)
            abort = self._run_share_verification(task)
        if abort is not None:
            return abort
        with obs.span("aggregation", task=task):
            self._run_aggregates(task)
            try:
                for machine in self.machines:
                    machine.act_resolve_first(task)
            except ResolutionError as error:
                return ProtocolAbort(str(error), phase="allocating",
                                     task=task)
        with obs.span("disclosure", task=task):
            claimants = self._run_disclosure(task)
            try:
                for machine in self.machines:
                    machine.act_find_winner(task, claimants)
            except ResolutionError as error:
                return ProtocolAbort(str(error), phase="allocating",
                                     task=task)
        with obs.span("resolution", task=task):
            self._run_second_price(task)
            try:
                for machine in self.machines:
                    machine.act_resolve_second(task)
            except ResolutionError as error:
                return ProtocolAbort(str(error), phase="allocating",
                                     task=task)
        reference = self._reference_agent()
        state = reference.task_state(task)
        self.trace.record("auction_resolved", task=task,
                          first_price=state.first_price,
                          winner=state.winner,
                          second_price=state.second_price)
        if obs.enabled:
            obs.event("auction_resolved", task=task,
                      first_price=state.first_price, winner=state.winner,
                      second_price=state.second_price)
        self._transcripts.append(AuctionTranscript(
            task=task,
            first_price=state.first_price,
            winner=state.winner,
            second_price=state.second_price,
            valid_aggregate_publishers=tuple(sorted(state.valid_lambdas)),
            valid_disclosers=tuple(sorted(state.valid_disclosures)),
        ))
        return None

    def _run_payments(self, completed_tasks: Optional[List[int]] = None
                      ) -> Optional[ProtocolAbort]:
        """Phase IV: collect claims and ask the escrow to decide.

        ``completed_tasks`` restricts every claim to the given tasks
        (degraded mode: quarantined auctions pay nothing); ``None`` keeps
        the historical claim-over-everything call, preserving the exact
        call signature deviant subclasses override.
        """
        for machine in self.machines:
            try:
                machine.send_payment_claim(self.transport,
                                           self._infrastructure_id,
                                           self.parameters.num_agents,
                                           completed_tasks)
            except ProtocolAbort as abort:
                return abort
        self.transport.step()
        for message in self.transport.receive(self._infrastructure_id,
                                              "payment_claim"):
            self.infrastructure.submit_claim(message.sender, message.payload)
        decision = self.infrastructure.decide()
        if not decision.dispensed:
            return ProtocolAbort(
                "payment claims conflict (agents %s); no payments dispensed"
                % (decision.conflicting_agents,),
                phase="payments",
            )
        self.trace.record("payments_dispensed",
                          payments=list(decision.payments))
        self._decision = decision
        return None

    # -- parallel (per-phase) drivers -------------------------------------------
    def _run_parallel_auctions(self, tasks: Sequence[int]
                               ) -> Optional[ProtocolAbort]:
        """Run every task's auction with phase-level parallelism.

        The paper's auctions are "parallel and independent": each protocol
        phase executes for *all* tasks inside one synchronization barrier,
        so the whole execution takes the per-auction round count (4 plus
        payments) instead of ``4m + 1``.  Message and computation totals
        are identical to the sequential schedule — only rounds (and hence
        latency) shrink, which ``tests/test_parallel.py`` pins down.
        """
        obs = self.observer
        for task in tasks:
            self.trace.record("auction_start", task=task)
        # The surviving-task set: degraded-mode quarantines remove tasks
        # from it between (and within) phases, strict mode never mutates
        # it (the first failure voids the run instead).
        active = list(tasks)
        # Phase II for every task, one barrier.
        with obs.span("bidding"):
            abort = self._run_parallel_bidding(active)
        if abort is not None:
            return abort
        # Step III.2 for every task, one barrier.
        with obs.span("aggregation"):
            abort = self._run_parallel_aggregation(active)
        if abort is not None:
            return abort
        # Step III.3 for every task, one barrier.
        with obs.span("disclosure"):
            abort = self._run_parallel_disclosure(active)
        if abort is not None:
            return abort
        # Step III.4 for every task, one barrier.
        with obs.span("resolution"):
            abort = self._run_parallel_resolution(active)
        if abort is not None:
            return abort
        reference = self._reference_agent()
        for task in active:
            state = reference.task_state(task)
            self.trace.record("auction_resolved", task=task,
                              first_price=state.first_price,
                              winner=state.winner,
                              second_price=state.second_price)
            if obs.enabled:
                obs.event("auction_resolved", task=task,
                          first_price=state.first_price,
                          winner=state.winner,
                          second_price=state.second_price)
            self._transcripts.append(AuctionTranscript(
                task=task,
                first_price=state.first_price,
                winner=state.winner,
                second_price=state.second_price,
                valid_aggregate_publishers=tuple(sorted(
                    state.valid_lambdas)),
                valid_disclosers=tuple(sorted(state.valid_disclosures)),
            ))
        return None

    def _run_parallel_bidding(self, tasks: Sequence[int]
                              ) -> Optional[ProtocolAbort]:
        """Phase II plus step III.1 for every task inside one barrier."""
        for task in tasks:
            for machine in self.machines:
                machine.send_bidding(task, self.transport)
        self.transport.step()
        for machine in self.machines:
            machine.recv_bidding(self.transport)
        for task in list(tasks):
            abort = self._run_share_verification(task)
            if abort is not None:
                abort = self._fail_task(task, abort, tasks)
                if abort is not None:
                    return abort
        return None

    def _run_batched_complaints(self, kind: str, stage: str,
                                boards: Dict[int, Dict[int, object]],
                                complaints_by_agent: Dict[
                                    int, List[Tuple[int, int]]],
                                arbitrate: Callable[
                                    [AgentMachine, int, Dict[int, object],
                                     List[int]], None]) -> None:
        """One shared complaint barrier covering every task's accusations.

        ``arbitrate(machine, task, board, accused)`` applies the verdict
        per machine once the union is known.
        """
        for agent_index, complaints in complaints_by_agent.items():
            self.transport.publish(agent_index, kind, complaints,
                                   field_elements=len(complaints))
        self.transport.step()
        union: Dict[int, set] = {}
        for machine in self.machines:
            for message in machine.drain(kind, self.transport):
                for task, accused in message.payload:
                    union.setdefault(task, set()).add(accused)
        for task, accused in union.items():
            self.trace.record("complaints", task=task, stage=stage,
                              accused=sorted(accused))
            for machine in self.machines:
                arbitrate(machine, task, boards.get(task, {}),
                          sorted(accused))

    def _run_parallel_aggregation(self, tasks: Sequence[int]
                                  ) -> Optional[ProtocolAbort]:
        """Step III.2 plus first-price resolution inside one barrier."""
        boards: Dict[int, Dict[int, object]] = {}
        for task in tasks:
            for machine in self.machines:
                machine.send_aggregates(task, self.transport)
        self.transport.step()
        for machine in self.machines:
            machine.collect_published("lambda_psi", self.transport, boards)
        complaints_by_agent: Dict[int, List[Tuple[int, int]]] = {}
        for task in tasks:
            board = boards.get(task, {})
            for machine in self.machines:
                for accused in machine.act_validate_aggregates(task, board):
                    complaints_by_agent.setdefault(machine.index, []).append(
                        (task, accused))
        if complaints_by_agent:
            self._run_batched_complaints(
                "aggregate_complaint", "aggregates", boards,
                complaints_by_agent,
                lambda machine, task, board, accused:
                    machine.act_arbitrate_aggregates(task, board, accused))
        for task in list(tasks):
            try:
                for machine in self.machines:
                    machine.act_resolve_first(task)
            except ResolutionError as error:
                abort = self._fail_task(
                    task, ProtocolAbort(str(error), phase="allocating",
                                        task=task), tasks)
                if abort is not None:
                    return abort
        return None

    def _run_parallel_disclosure(self, tasks: Sequence[int]
                                 ) -> Optional[ProtocolAbort]:
        """Step III.3 plus winner identification inside one barrier."""
        row_boards: Dict[int, Dict[int, object]] = {}
        claimants_by_task: Dict[int, List[int]] = {}
        for task in tasks:
            for machine in self.machines:
                machine.send_disclosure(task, self.transport,
                                        self.parameters.num_agents)
        self.transport.step()
        for machine in self.machines:
            machine.collect_published("f_disclosure", self.transport,
                                      row_boards)
            machine.collect_claims(self.transport, claimants_by_task)
        complaints_by_agent: Dict[int, List[Tuple[int, int]]] = {}
        for task in tasks:
            rows = row_boards.get(task, {})
            for machine in self.machines:
                for accused in machine.act_validate_disclosures(task, rows):
                    complaints_by_agent.setdefault(machine.index, []).append(
                        (task, accused))
        if complaints_by_agent:
            self._run_batched_complaints(
                "disclosure_complaint", "disclosures", row_boards,
                complaints_by_agent,
                lambda machine, task, rows, accused:
                    machine.act_arbitrate_disclosures(task, rows, accused))
        for task in list(tasks):
            claimants = sorted(
                set(claimants_by_task.get(task, [])),
                key=lambda i: self.parameters.pseudonyms[i])
            try:
                for machine in self.machines:
                    machine.act_find_winner(task, claimants)
            except ResolutionError as error:
                abort = self._fail_task(
                    task, ProtocolAbort(str(error), phase="allocating",
                                        task=task), tasks)
                if abort is not None:
                    return abort
        return None

    def _run_parallel_resolution(self, tasks: Sequence[int]
                                 ) -> Optional[ProtocolAbort]:
        """Step III.4 plus second-price resolution inside one barrier."""
        second_boards: Dict[int, Dict[int, object]] = {}
        for task in tasks:
            for machine in self.machines:
                machine.send_second_price(task, self.transport)
        self.transport.step()
        for machine in self.machines:
            machine.collect_published("second_price", self.transport,
                                      second_boards)
        complaints_by_agent: Dict[int, List[Tuple[int, int]]] = {}
        for task in tasks:
            board = second_boards.get(task, {})
            for machine in self.machines:
                for accused in machine.act_validate_excluded(task, board):
                    complaints_by_agent.setdefault(machine.index, []).append(
                        (task, accused))
        if complaints_by_agent:
            self._run_batched_complaints(
                "second_price_complaint", "second_price", second_boards,
                complaints_by_agent,
                lambda machine, task, board, accused:
                    machine.act_arbitrate_excluded(task, board, accused))
        for task in list(tasks):
            try:
                for machine in self.machines:
                    machine.act_resolve_second(task)
            except ResolutionError as error:
                abort = self._fail_task(
                    task, ProtocolAbort(str(error), phase="allocating",
                                        task=task), tasks)
                if abort is not None:
                    return abort
        return None

    # -- public API -----------------------------------------------------------
    def execute(self, num_tasks: int, parallel: bool = False,
                degraded: bool = False,
                checkpoint_path: Optional[str] = None,
                resume: Optional["ProtocolCheckpoint"] = None,
                workers: Optional[int] = None,
                warm_cache: Optional[PublicValueCache] = None,
                pool: Optional[Any] = None) -> DMWOutcome:
        """Run all ``num_tasks`` auctions plus the payments phase.

        Parameters
        ----------
        num_tasks:
            Number of auctions ``m``.
        parallel:
            When True, the auctions run concurrently instead of strictly
            one after another.  Without ``workers`` (and without
            checkpoint/resume) this selects the in-process phase-barrier
            driver: all auctions advance phase-by-phase inside shared
            barriers (the paper's "parallel and independent" reading),
            5-7 rounds total instead of ``4m + 1``, identical messages
            and outcomes.  With ``workers`` (or with
            ``checkpoint_path``/``resume``, which imply the pool) the
            process-pool engine in :mod:`repro.parallel` shards the
            auctions across worker processes and merges them back
            deterministically — outcomes, transcripts, payments, and
            per-agent operation counts are bit-identical to the
            sequential driver (see ``docs/PERFORMANCE.md``).
        degraded:
            When True, a per-task abort quarantines that auction instead
            of voiding the run: surviving tasks complete with transcripts
            and payments identical to a fault-free execution restricted
            to them, and the outcome carries a
            :class:`~repro.scheduling.schedule.PartialSchedule` plus the
            per-task aborts.  A payment-escrow conflict still voids the
            whole execution (see ``docs/RESILIENCE.md``).
        checkpoint_path:
            When given, a ``dmw_checkpoint`` document is written to this
            path after every completed (or quarantined) auction — the
            sequential driver's prefix boundary, or the process-pool
            driver's completed-auction frontier — so a crashed
            orchestrator can be resumed from the last boundary.  The
            phase-barrier driver (``parallel=True`` without ``workers``)
            has no quiescent auction boundary, so combining it with
            checkpointing routes the run through the process pool.
        resume:
            A :class:`~repro.core.checkpoint.ProtocolCheckpoint` to
            restore before running: auctions inside the checkpoint's
            completed frontier are skipped and the execution runs exactly
            the remaining ones, producing an outcome identical to the
            uninterrupted run — ``cache_stats`` included, since the
            checkpoint carries the public-value cache state.  The
            protocol must be freshly constructed with the original
            configuration.
        workers:
            Number of OS processes for the process-pool engine; requires
            ``parallel=True``.  ``workers=1`` exercises the pool
            machinery on a single worker (useful for differential
            tests).
        warm_cache:
            An externally prepared :class:`PublicValueCache` to use as
            the execution's shared cache instead of a fresh one.  The
            always-on service passes a per-job cache pre-seeded with a
            previous same-group job's public entries
            (:meth:`PublicValueCache.seed_from`), so repeat-parameter
            jobs skip recomputation.  Entries are content-keyed public
            values and every call site charges the naive analytic
            schedule on hits, so outcomes, transcripts, and per-agent
            counters are bit-identical with or without warming — only
            ``cache_stats`` (and wall-clock) differ, by design.
        pool:
            A live ``ProcessPoolExecutor`` to run pool shards on instead
            of a per-call executor (requires the pool driver to be
            selected).  A long-lived daemon keeps one resident pool
            across jobs; each shard re-installs its job's
            :class:`~repro.parallel.PoolSpec` (and arithmetic backend)
            when it differs from the worker's installed one.
        """
        if workers is not None:
            if not parallel:
                raise ParameterError(
                    "workers=%d requires parallel=True" % workers)
            if workers < 1:
                raise ParameterError("workers must be >= 1, got %d" % workers)
        # checkpoint/resume needs a quiescent auction boundary; the
        # phase-barrier driver has none, so those runs go through the
        # process pool (which checkpoints at its completed-task frontier).
        use_pool = parallel and (
            workers is not None or checkpoint_path is not None
            or resume is not None)
        if use_pool and workers is None:
            workers = os.cpu_count() or 1
        if resume is not None:
            if resume.num_tasks != num_tasks:
                raise ParameterError(
                    "checkpoint covers %d tasks, execute() asked for %d"
                    % (resume.num_tasks, num_tasks)
                )
            if resume.degraded != degraded:
                raise ParameterError(
                    "checkpoint was taken with degraded=%s; resume must "
                    "use the same mode" % resume.degraded
                )
        # One execution-scoped public-value cache, shared by every agent:
        # the cached quantities (commitment evaluations, Lagrange weights,
        # resolution results) are functions of *published* data only, so
        # sharing leaks nothing, and each agent's OperationCounter is still
        # charged the full analytic schedule on every hit (see
        # docs/PERFORMANCE.md).  A fresh cache per execute() call keeps
        # auctions from different executions fully isolated; the service
        # layer opts into cross-run warming by passing a pre-seeded cache.
        shared_cache = (warm_cache if warm_cache is not None
                        else PublicValueCache())
        for agent in self.agents:
            agent.adopt_cache(shared_cache)
        self._shared_cache = shared_cache
        self._degraded = degraded
        skip: Set[int] = set()
        if resume is not None:
            # Restore happens before the observer binds its delta sources,
            # so the run span measures only post-resume work and the
            # phase-partition invariant is preserved.
            resume.apply(self)
            skip = resume.completed_set()
            self.trace.record("resumed", next_task=resume.next_task,
                              completed=len(self._transcripts),
                              quarantined=sorted(self._task_aborts))
        if use_pool:
            # The pool's shards each use a fresh per-task cache; the
            # execution's cache_stats are the merged per-shard sums,
            # accumulated here (continuing a resumed run's saved tallies).
            override: Dict[str, int] = {
                key: 0 for key in shared_cache.stats()}
            if resume is not None:
                for key, value in (resume.cache_state.get("stats")
                                   or {}).items():
                    override[key] = int(value)
            self._cache_stats_override = override
            self._parallelism = {"workers": workers,
                                 "tasks_pooled": num_tasks - len(skip)}
        obs = self.observer
        if obs.enabled:
            # Delta sources for the span attribution: summed counted work
            # across agents and the network's running metric totals.
            obs.bind(self._summed_operations, self.network.metrics.as_dict)
        with obs.span("run", kind=KIND_RUN, num_tasks=num_tasks,
                      num_agents=self.parameters.num_agents,
                      parallel=parallel, workers=workers):
            if use_pool:
                # Imported lazily: repro.parallel imports core modules, so
                # a top-level import here would be circular.
                from ..parallel import run_pool_auctions
                assert workers is not None
                abort = run_pool_auctions(self, num_tasks, workers,
                                          checkpoint_path,
                                          pool=pool, warm_cache=warm_cache)
                if abort is not None:
                    return self._void(abort)
            elif parallel:
                abort = self._run_parallel_auctions(range(num_tasks))
                if abort is not None:
                    return self._void(abort)
            else:
                for task in range(num_tasks):
                    if task in skip:
                        continue
                    abort = self._run_auction(task)
                    if abort is not None:
                        if not degraded:
                            return self._void(abort)
                        self._quarantine(task, abort)
                    if checkpoint_path is not None:
                        self._write_checkpoint(checkpoint_path, num_tasks,
                                               task + 1)
            # Resuming from a mid-run frontier can append transcripts out
            # of task order; payments and the outcome expect task order.
            self._transcripts.sort(key=lambda t: t.task)
            completed_tasks = sorted(t.task for t in self._transcripts)
            with obs.span(PAYMENTS_PHASE):
                abort = self._run_payments(
                    completed_tasks if degraded else None)
            if abort is not None:
                return self._void(abort)
            return self._build_completed_outcome(num_tasks)

    def _build_completed_outcome(self, num_tasks: int) -> DMWOutcome:
        """Assemble the outcome once payments have been dispensed."""
        if self._task_aborts:
            partial: List[Optional[int]] = [None] * num_tasks
            for transcript in self._transcripts:
                partial[transcript.task] = transcript.winner
            schedule: object = PartialSchedule(partial,
                                               self.parameters.num_agents)
        else:
            assignment = [0] * num_tasks
            for transcript in self._transcripts:
                assignment[transcript.task] = transcript.winner
            schedule = Schedule(assignment, self.parameters.num_agents)
        return DMWOutcome(
            completed=True, schedule=schedule,
            payments=self._decision.payments,
            transcripts=list(self._transcripts), abort=None,
            network_metrics=self.network.metrics,
            agent_operations=[agent.counter.snapshot()
                              for agent in self.agents],
            cache_stats=self._execution_cache_stats(),
            degraded=self._degraded,
            task_aborts=dict(self._task_aborts),
            parallelism=dict(self._parallelism),
        )


def run_dmw(problem: SchedulingProblem,
            parameters: Optional[DMWParameters] = None,
            fault_bound: int = 1,
            rng: Optional[random.Random] = None,
            group_size: str = "small",
            parallel: bool = False,
            degraded: bool = False,
            trace: Optional[ProtocolTrace] = None,
            observer: Optional[SpanRecorder] = None,
            workers: Optional[int] = None,
            flight: Optional[FlightRecorder] = None,
            transport: Optional[Union[str, Transport]] = None) -> DMWOutcome:
    """Convenience entry point: run DMW on an integer-valued instance.

    Every ``t_i^j`` must be an integer in the (derived or given) bid set
    ``W``; use :func:`repro.scheduling.workloads.discretize_to_bid_set`
    for continuous instances.

    Parameters
    ----------
    problem:
        The instance whose times are the agents' true values.
    parameters:
        Pre-built protocol parameters; generated from the problem shape
        when omitted.
    fault_bound:
        ``c``, used only when generating parameters.
    rng:
        Seeds the per-agent private randomness streams.
    group_size:
        Cryptographic fixture size when generating parameters.
    trace:
        Optional :class:`~repro.core.trace.ProtocolTrace` to record the
        event log into.
    observer:
        Optional :class:`~repro.obs.spans.SpanRecorder` for span-based
        observability (see ``docs/OBSERVABILITY.md``).
    workers:
        With ``parallel=True``, shard the auctions across this many OS
        processes via the pool engine (:mod:`repro.parallel`).
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder` capturing one
        structured event per message lifecycle step (see
        ``docs/OBSERVABILITY.md``, "Flight recorder").
    transport:
        Optional :class:`~repro.network.transport.Transport` (or a name
        accepted by :func:`~repro.network.transport.create_transport`,
        e.g. ``"asyncio"``) to carry the protocol's messages.  A
        transport built here from a name is closed before returning.
    """
    rng = rng or random.Random(0)
    if parameters is None:
        parameters = DMWParameters.generate(problem.num_agents,
                                            fault_bound=fault_bound,
                                            group_size=group_size)
    agents = []
    for index in range(problem.num_agents):
        values = [int(problem.time(index, task))
                  for task in range(problem.num_tasks)]
        agents.append(DMWAgent(index, parameters, values,
                               rng=random.Random(rng.getrandbits(64))))
    owned_transport: Optional[Transport] = None
    if isinstance(transport, str):
        if transport == "inprocess":
            transport = None  # the default self-built simulator path
        else:
            transport = owned_transport = create_transport(
                transport, parameters.num_agents)
    try:
        protocol = DMWProtocol(parameters, agents, trace=trace,
                               observer=observer, flight=flight,
                               transport=transport)
        return protocol.execute(problem.num_tasks, parallel=parallel,
                                degraded=degraded, workers=workers)
    finally:
        if owned_transport is not None:
            owned_transport.close()
