"""Structured execution traces for DMW runs.

A :class:`ProtocolTrace` records what happened, when, and on whose
evidence: phase transitions, per-agent verification verdicts, complaint
rounds, resolutions, and the final decision.  Traces serve four users:

* tests assert event *sequences* (e.g. "complaints precede arbitration,
  and only when a deviant is present");
* the CLI's ``--trace`` flag prints a human-readable timeline and the
  ``--trace-json`` flag dumps the structured events;
* the observability layer (:mod:`repro.obs`) embeds the trace in run
  reports and derives complaint/deviant counts from it;
* debugging: a failing distributed run is unreadable from message dumps,
  and perfectly readable from its trace.

Events are timestamped with ``time.perf_counter`` offsets from the
trace's construction, so a trace doubles as a coarse timeline.  Tracing
is opt-in (``DMWProtocol(..., trace=ProtocolTrace())``) and adds no cost
when off (:data:`NULL_TRACE` discards events without allocating).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event.

    Attributes
    ----------
    sequence:
        Monotone event index.
    task:
        Task the event belongs to (``None`` for execution-level events).
    kind:
        Event type, e.g. ``"phase"``, ``"resolved_first_price"``,
        ``"complaints"``, ``"winner"``, ``"abort"``, ``"payments"``.
    detail:
        Event payload (kind-specific, JSON-friendly).
    timestamp:
        Seconds since the owning trace was created (``perf_counter``
        based; 0.0 for hand-built events).
    """

    sequence: int
    task: Optional[int]
    kind: str
    detail: Dict[str, Any]
    timestamp: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly encoding (used by serialization and run reports)."""
        return {
            "sequence": self.sequence,
            "task": self.task,
            "kind": self.kind,
            "detail": dict(self.detail),
            "timestamp_s": self.timestamp,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "TraceEvent":
        """Decode an event encoded by :meth:`to_dict`."""
        return cls(sequence=document["sequence"], task=document["task"],
                   kind=document["kind"], detail=dict(document["detail"]),
                   timestamp=document.get("timestamp_s", 0.0))

    def render(self, sequence_width: int = 3) -> str:
        """One-line human-readable form.

        ``sequence_width`` pads the sequence field; callers rendering a
        whole trace pass the width of the largest sequence number so
        columns stay aligned past 999 events.
        """
        scope = "task %s" % self.task if self.task is not None else "run"
        pairs = ", ".join("%s=%s" % (k, v)
                          for k, v in sorted(self.detail.items()))
        return "[%0*d] %-8s %-24s %s" % (sequence_width, self.sequence,
                                         scope, self.kind, pairs)


class ProtocolTrace:
    """An append-only event log."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._epoch = time.perf_counter()

    def record(self, kind: str, task: Optional[int] = None,
               **detail: Any) -> None:
        """Append one event."""
        self._events.append(TraceEvent(
            sequence=len(self._events), task=task, kind=kind, detail=detail,
            timestamp=time.perf_counter() - self._epoch,
        ))

    # -- queries -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: Optional[str] = None,
               task: Optional[int] = None) -> List[TraceEvent]:
        """Events filtered by kind and/or task."""
        return [event for event in self._events
                if (kind is None or event.kind == kind)
                and (task is None or event.task == task)]

    def kinds(self) -> List[str]:
        """Event kinds in occurrence order (with repeats)."""
        return [event.kind for event in self._events]

    def render(self) -> str:
        """The full timeline as text (sequence column sized to fit)."""
        if not self._events:
            return ""
        width = max(3, len(str(self._events[-1].sequence)))
        return "\n".join(event.render(sequence_width=width)
                         for event in self._events)

    def to_list(self) -> List[Dict[str, Any]]:
        """Every event as a JSON-friendly dict (see
        :meth:`TraceEvent.to_dict`)."""
        return [event.to_dict() for event in self._events]

    @classmethod
    def from_list(cls, documents: List[Dict[str, Any]]) -> "ProtocolTrace":
        """Rebuild a trace from :meth:`to_list` output (round-trip)."""
        trace = cls()
        trace._events = [TraceEvent.from_dict(document)
                         for document in documents]
        return trace


class NullTrace(ProtocolTrace):
    """Discards every event (the default when tracing is off)."""

    def record(self, kind: str, task: Optional[int] = None,
               **detail: Any) -> None:
        pass


NULL_TRACE = NullTrace()
