"""Structured execution traces for DMW runs.

A :class:`ProtocolTrace` records what happened, when, and on whose
evidence: phase transitions, per-agent verification verdicts, complaint
rounds, resolutions, and the final decision.  Traces serve three users:

* tests assert event *sequences* (e.g. "complaints precede arbitration,
  and only when a deviant is present");
* the CLI's ``--trace`` flag prints a human-readable timeline;
* debugging: a failing distributed run is unreadable from message dumps,
  and perfectly readable from its trace.

Tracing is opt-in (``DMWProtocol(..., trace=ProtocolTrace())``) and adds
no cost when off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event.

    Attributes
    ----------
    sequence:
        Monotone event index.
    task:
        Task the event belongs to (``None`` for execution-level events).
    kind:
        Event type, e.g. ``"phase"``, ``"resolved_first_price"``,
        ``"complaints"``, ``"winner"``, ``"abort"``, ``"payments"``.
    detail:
        Event payload (kind-specific, JSON-friendly).
    """

    sequence: int
    task: Optional[int]
    kind: str
    detail: Dict[str, Any]

    def render(self) -> str:
        """One-line human-readable form."""
        scope = "task %s" % self.task if self.task is not None else "run"
        pairs = ", ".join("%s=%s" % (k, v)
                          for k, v in sorted(self.detail.items()))
        return "[%03d] %-8s %-24s %s" % (self.sequence, scope, self.kind,
                                         pairs)


class ProtocolTrace:
    """An append-only event log."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, kind: str, task: Optional[int] = None,
               **detail: Any) -> None:
        """Append one event."""
        self._events.append(TraceEvent(sequence=len(self._events),
                                       task=task, kind=kind, detail=detail))

    # -- queries -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: Optional[str] = None,
               task: Optional[int] = None) -> List[TraceEvent]:
        """Events filtered by kind and/or task."""
        return [event for event in self._events
                if (kind is None or event.kind == kind)
                and (task is None or event.task == task)]

    def kinds(self) -> List[str]:
        """Event kinds in occurrence order (with repeats)."""
        return [event.kind for event in self._events]

    def render(self) -> str:
        """The full timeline as text."""
        return "\n".join(event.render() for event in self._events)


class NullTrace(ProtocolTrace):
    """Discards every event (the default when tracing is off)."""

    def record(self, kind: str, task: Optional[int] = None,
               **detail: Any) -> None:
        pass


NULL_TRACE = NullTrace()
