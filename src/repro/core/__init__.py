"""The paper's contribution: the Distributed MinWork (DMW) mechanism."""

from .agent import DMWAgent
from .audit import AuditFinding, AuditReport, TranscriptAuditor, audit_protocol_run
from .checkpoint import ProtocolCheckpoint
from .bidding import (
    AgentCommitments,
    BidPackage,
    ShareBundle,
    all_share_bundles,
    encode_bid,
)
from .deviant import (
    CorruptCommitmentsAgent,
    CorruptSharesAgent,
    DeviantAgent,
    EagerDisclosureAgent,
    FalseComplaintAgent,
    FalseDisclosureAgent,
    FalseWinnerClaimAgent,
    InflatedPaymentClaimAgent,
    MisreportBidAgent,
    SilentWinnerAgent,
    WithholdAggregatesAgent,
    WithholdCommitmentsAgent,
    WithholdDisclosureAgent,
    WithholdPaymentClaimAgent,
    WithholdSharesAgent,
    WrongAggregatesAgent,
    WrongSecondPriceAgent,
    standard_deviations,
)
from .exceptions import DMWError, ParameterError, ProtocolAbort
from .naive import NaiveAgent, NaiveDistributedMinWork, run_naive
from .outcome import AuctionTranscript, DMWOutcome
from .parameters import DMWParameters
from .payments import PaymentDecision, PaymentInfrastructure
from .protocol import DMWProtocol, run_dmw
from .trace import NULL_TRACE, ProtocolTrace, TraceEvent
from .resolution import (
    ResolutionError,
    identify_winner,
    resolve_first_price,
    resolve_second_price,
)
from .verification import (
    gamma_value,
    phi_value,
    verify_f_disclosure,
    verify_lambda_psi,
    verify_share_bundle,
)

__all__ = [
    "AgentCommitments",
    "AuctionTranscript",
    "AuditFinding",
    "AuditReport",
    "TranscriptAuditor",
    "audit_protocol_run",
    "BidPackage",
    "CorruptCommitmentsAgent",
    "CorruptSharesAgent",
    "DMWAgent",
    "DMWError",
    "DMWOutcome",
    "DMWParameters",
    "DMWProtocol",
    "DeviantAgent",
    "EagerDisclosureAgent",
    "FalseComplaintAgent",
    "FalseDisclosureAgent",
    "FalseWinnerClaimAgent",
    "InflatedPaymentClaimAgent",
    "MisreportBidAgent",
    "NaiveAgent",
    "NaiveDistributedMinWork",
    "ParameterError",
    "PaymentDecision",
    "PaymentInfrastructure",
    "ProtocolAbort",
    "ProtocolCheckpoint",
    "ResolutionError",
    "ShareBundle",
    "WithholdAggregatesAgent",
    "WithholdCommitmentsAgent",
    "WithholdDisclosureAgent",
    "WithholdPaymentClaimAgent",
    "WithholdSharesAgent",
    "WrongAggregatesAgent",
    "WrongSecondPriceAgent",
    "all_share_bundles",
    "encode_bid",
    "gamma_value",
    "identify_winner",
    "phi_value",
    "resolve_first_price",
    "resolve_second_price",
    "NULL_TRACE",
    "ProtocolTrace",
    "SilentWinnerAgent",
    "TraceEvent",
    "run_dmw",
    "run_naive",
    "standard_deviations",
    "verify_f_disclosure",
    "verify_lambda_psi",
    "verify_share_bundle",
]
