"""Phase I of DMW: the published protocol parameters.

Phase I publishes ``p, q, z1, z2`` (the Schnorr group and commitment
generators), the fault bound ``c``, the pseudonym set ``A``, and the
discrete bid set ``W``.  This module bundles them as
:class:`DMWParameters`, validates the paper's constraints, and derives the
protocol constants:

* ``sigma = w_k + c + 1`` — the committed polynomial width;
* the bid/degree correspondence ``tau = sigma - y`` (small bids map to
  large degrees so that summing polynomials and resolving the degree of the
  sum reveals the *minimum* bid).

Validation is slightly stricter than the paper's stated
``w_k < n - c + 1``: we require ``w_k <= n - c - 1`` so that even the
largest possible degree ``sigma - w_1`` stays resolvable from the ``n``
available pseudonym shares (DESIGN.md decision 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..crypto.groups import GroupParameters, SchnorrGroup, fixture_group
from .exceptions import ParameterError


@dataclass(frozen=True)
class DMWParameters:
    """The published parameters of one DMW execution.

    Attributes
    ----------
    group_parameters:
        The Schnorr group and generators ``(p, q, z1, z2)``.
    fault_bound:
        ``c`` — the maximum number of faulty agents tolerated; also the
        collusion-resistance threshold of Theorem 10.
    pseudonyms:
        ``A = (alpha_1, ..., alpha_n)``; ``alpha_i`` is agent ``A_i``'s
        public pseudonym, a distinct non-zero element of ``Z_q``.
    bid_values:
        ``W = (w_1 < ... < w_k)`` — the legal discrete bids.
    """

    group_parameters: GroupParameters
    fault_bound: int
    pseudonyms: Tuple[int, ...]
    bid_values: Tuple[int, ...]
    #: How published values (Lambda/Psi, disclosure rows, second-price
    #: values) are verified:
    #:
    #: * ``"assigned"`` (default) — each publisher is checked by ``c + 1``
    #:   assigned verifiers; failures are broadcast as complaints and
    #:   arbitrated by full recomputation.  Per-agent cost
    #:   ``O(m n^2 log p)``, the Theorem 12 budget (at least one of any
    #:   ``c + 1`` verifiers is honest under the threshold trust model).
    #: * ``"full"`` — every agent recomputes every check itself
    #:   (``O(m n^3 log p)`` per agent); kept as the cost-model ablation.
    verification_mode: str = "assigned"
    #: How each received share bundle is checked against eqs. (7)-(9)
    #: (distinct from :attr:`verification_mode`, which governs the
    #: aggregate-check regime):
    #:
    #: * ``"per-share"`` (default) — three independent openings and
    #:   homomorphic evaluations per sender, exactly the paper's listing.
    #: * ``"batched"`` — one random-linear-combination multi-exp per
    #:   sender (:func:`repro.crypto.commitments.verify_share_batch`);
    #:   same accept/reject verdicts up to a ``1/q`` soundness error,
    #:   identical counted cost, lower wall-clock.
    share_verification_mode: str = "per-share"

    def __post_init__(self) -> None:
        if self.verification_mode not in ("assigned", "full"):
            raise ParameterError(
                "verification_mode must be 'assigned' or 'full', got %r"
                % (self.verification_mode,)
            )
        if self.share_verification_mode not in ("per-share", "batched"):
            raise ParameterError(
                "share_verification_mode must be 'per-share' or 'batched', "
                "got %r" % (self.share_verification_mode,)
            )
        q = self.group_parameters.group.q
        n = len(self.pseudonyms)
        if n < 2:
            raise ParameterError("DMW needs at least two agents")
        if self.fault_bound < 0 or self.fault_bound >= n:
            raise ParameterError(
                "fault bound c must satisfy 0 <= c < n, got c=%d, n=%d"
                % (self.fault_bound, n)
            )
        reduced = [alpha % q for alpha in self.pseudonyms]
        if any(alpha == 0 for alpha in reduced):
            raise ParameterError("pseudonyms must be non-zero mod q")
        if len(set(reduced)) != n:
            raise ParameterError("pseudonyms must be distinct mod q")
        bids = tuple(self.bid_values)
        if not bids:
            raise ParameterError("bid set W must be non-empty")
        if list(bids) != sorted(set(bids)):
            raise ParameterError("bid set W must be strictly increasing")
        if bids[0] < 1:
            raise ParameterError("bids must be positive (0 < w_1)")
        if bids[-1] > n - self.fault_bound - 1:
            raise ParameterError(
                "w_k=%d too large: need w_k <= n - c - 1 = %d so every "
                "degree stays resolvable from n shares"
                % (bids[-1], n - self.fault_bound - 1)
            )
        sigma = bids[-1] + self.fault_bound + 1
        if sigma - bids[0] > n - 1:
            raise ParameterError(
                "sigma - w_1 = %d exceeds n - 1 = %d: the smallest bid's "
                "degree could not be resolved" % (sigma - bids[0], n - 1)
            )
        if sigma >= q:
            raise ParameterError("sigma must be far below q")

    # -- derived constants ---------------------------------------------------
    @property
    def num_agents(self) -> int:
        return len(self.pseudonyms)

    @property
    def sigma(self) -> int:
        """``sigma = w_k + c + 1`` — the committed coefficient width."""
        return self.bid_values[-1] + self.fault_bound + 1

    @property
    def group(self) -> SchnorrGroup:
        return self.group_parameters.group

    @property
    def z1(self) -> int:
        return self.group_parameters.z1

    @property
    def z2(self) -> int:
        return self.group_parameters.z2

    # -- bid/degree correspondence ---------------------------------------------
    def degree_for_bid(self, bid: int) -> int:
        """Return ``tau = sigma - bid`` (the degree of ``e``)."""
        self.validate_bid(bid)
        return self.sigma - bid

    def bid_for_degree(self, degree: int) -> int:
        """Return the bid encoded by an ``e``-polynomial degree."""
        bid = self.sigma - degree
        self.validate_bid(bid)
        return bid

    def validate_bid(self, bid: int) -> None:
        """Raise :class:`ParameterError` unless ``bid`` is in ``W``."""
        if bid not in self.bid_values:
            raise ParameterError(
                "bid %r is not in the published bid set W=%s"
                % (bid, list(self.bid_values))
            )

    def first_price_degree_candidates(self) -> List[int]:
        """Candidate degrees for eq. (12), ascending.

        Degrees are ``sigma - w`` for ``w in W``; scanning them ascending
        makes the first hit the degree of ``E``, i.e. the minimum bid.
        """
        return [self.sigma - w for w in reversed(self.bid_values)]

    def disclosure_width(self, first_price: int) -> int:
        """Number of share rows disclosed for winner identification.

        ``first_price + 1`` rows are needed to resolve a degree-
        ``first_price`` polynomial (DESIGN.md decision 2); ``c`` extra rows
        are disclosed up-front so up to ``c`` corrupt rows can be discarded
        without an extra recovery round (DESIGN.md decision 4).
        """
        return min(self.num_agents, first_price + 1 + self.fault_bound)

    def assigned_verifiers(self, publisher: int) -> List[int]:
        """The ``c + 1`` agents responsible for checking ``publisher``.

        The ring assignment ``publisher - 1, ..., publisher - (c + 1)``
        (mod ``n``) guarantees every publisher is covered by ``c + 1``
        *distinct* other agents, so under the threshold trust model (at
        most ``c`` faulty) at least one assigned verifier is honest.
        """
        n = self.num_agents
        return [(publisher - offset) % n
                for offset in range(1, self.fault_bound + 2)]

    def verification_assignments(self, verifier: int) -> List[int]:
        """The publishers agent ``verifier`` is responsible for checking."""
        n = self.num_agents
        return [(verifier + offset) % n
                for offset in range(1, self.fault_bound + 2)]

    # -- construction -----------------------------------------------------------
    @classmethod
    def generate(cls, num_agents: int, fault_bound: int = 1,
                 bid_values: Optional[Sequence[int]] = None,
                 group_parameters: Optional[GroupParameters] = None,
                 group_size: str = "small",
                 verification_mode: str = "assigned",
                 share_verification_mode: str = "per-share"
                 ) -> "DMWParameters":
        """Build a standard parameter set for ``num_agents`` agents.

        Parameters
        ----------
        num_agents:
            Number of participating agents ``n``.
        fault_bound:
            The fault/collusion bound ``c``.
        bid_values:
            The bid set ``W``; defaults to the maximal legal set
            ``{1, ..., n - c - 1}``.
        group_parameters:
            Cryptographic group; defaults to the cached fixture of
            ``group_size``.
        group_size:
            Fixture name used when ``group_parameters`` is omitted.
        """
        if bid_values is None:
            top = num_agents - fault_bound - 1
            if top < 1:
                raise ParameterError(
                    "no legal bid set for n=%d, c=%d (need n >= c + 2 and a "
                    "positive w_k)" % (num_agents, fault_bound)
                )
            bid_values = list(range(1, top + 1))
        if group_parameters is None:
            group_parameters = fixture_group(group_size)
        pseudonyms = tuple(range(1, num_agents + 1))
        return cls(group_parameters=group_parameters,
                   fault_bound=fault_bound,
                   pseudonyms=pseudonyms,
                   bid_values=tuple(bid_values),
                   verification_mode=verification_mode,
                   share_verification_mode=share_verification_mode)
