"""Exceptions raised by the DMW protocol implementation."""

from __future__ import annotations

from typing import Any, Optional, Tuple


class DMWError(Exception):
    """Base class for all DMW errors."""


class ParameterError(DMWError):
    """Invalid Phase I parameters (bid set, pseudonyms, fault bound...)."""


class ProtocolAbort(DMWError):
    """An honest agent detected a protocol violation and terminated.

    Per the paper's faithfulness proofs, termination yields zero utility
    for every agent: no allocation is made and no payment dispensed.

    Attributes
    ----------
    reason:
        Human-readable description of what failed.
    phase:
        Protocol phase (``"bidding"``, ``"allocating"``, ``"payments"``).
    task:
        Task index of the affected auction, if applicable.
    detected_by:
        Index of the agent that detected the violation, if applicable.
    offender:
        Index of the agent whose messages triggered detection, if known.
    """

    def __init__(self, reason: str, phase: str,
                 task: Optional[int] = None,
                 detected_by: Optional[int] = None,
                 offender: Optional[int] = None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.phase = phase
        self.task = task
        self.detected_by = detected_by
        self.offender = offender

    def __repr__(self) -> str:
        return ("ProtocolAbort(reason=%r, phase=%r, task=%r, detected_by=%r, "
                "offender=%r)" % (self.reason, self.phase, self.task,
                                  self.detected_by, self.offender))

    def __reduce__(self) -> Tuple[Any, ...]:
        """Pickle support (the process-pool driver ships aborts between
        processes; the default exception reduction would drop ``phase``)."""
        return (ProtocolAbort, (self.reason, self.phase, self.task,
                                self.detected_by, self.offender))
