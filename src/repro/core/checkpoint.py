"""Checkpoint/resume: serializable protocol state at auction boundaries.

The sequential driver runs one complete auction per iteration; between
two auctions the distributed state is *quiescent* — every inbox is
drained, no message is in flight, and the only state that determines the
rest of the execution is (a) each agent's private randomness stream, (b)
the resolved transcripts so far, (c) the accumulated accounting (operation
counters, network metrics, wall clock), and (d) the degraded-mode
quarantine record.  :class:`ProtocolCheckpoint` captures exactly that, so
a crashed orchestrator can be restarted from the last boundary and
produce an outcome **identical** to the uninterrupted run: same schedule,
same payments, same transcripts, same operation counts, same network
totals (``tests/test_checkpoint.py`` pins this down).

What is deliberately *not* captured:

* Cryptographic secrets — shares, polynomials, commitments.  Completed
  auctions are summarised by their public transcript (winner and prices
  are all the payments phase needs), and the in-flight auction is simply
  re-run from its start, regenerating shares from the restored rng
  streams.  A checkpoint file therefore leaks nothing the bulletin board
  did not already reveal.
* The bulletin-board history.  Resuming restores the *outcome*-relevant
  state; a post-resume transcript audit only covers the auctions run
  since the restart.
* The shared public-value cache.  It is rebuilt cold on resume;
  operation counters are unaffected because the analytic schedule is
  charged on cache hits too (``docs/PERFORMANCE.md``), so only the
  ``cache_stats`` diagnostic differs from the uninterrupted run.

Checkpointing is a sequential-driver feature: the parallel driver has no
quiescent boundary short of the whole Phase II-III block, so
:meth:`~repro.core.protocol.DMWProtocol.execute` rejects the combination.

Serialization lives in :mod:`repro.serialization` (format version 3,
document type ``dmw_checkpoint``); this module holds only the in-memory
state transfer, keeping the dependency one-directional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..network.metrics import NetworkMetrics
from .exceptions import ParameterError, ProtocolAbort
from .outcome import AuctionTranscript

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .protocol import DMWProtocol


def encode_rng_state(state: Any) -> List[Any]:
    """JSON-encode a ``random.Random.getstate()`` tuple.

    The Mersenne Twister state is ``(version, tuple_of_ints, gauss_next)``;
    JSON has no tuples, so both levels become lists.
    """
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def decode_rng_state(encoded: List[Any]) -> Any:
    """Invert :func:`encode_rng_state` back to a ``setstate`` tuple."""
    version, internal, gauss_next = encoded
    return (version, tuple(internal), gauss_next)


@dataclass
class ProtocolCheckpoint:
    """Everything needed to resume a sequential execution at a boundary.

    Attributes
    ----------
    num_tasks:
        Total number of auctions the execution runs.
    next_task:
        First task index the resumed run must execute.
    degraded:
        Whether the interrupted execution ran in graceful-degradation
        mode (a resume must use the same mode).
    num_agents:
        Sanity guard: the resuming protocol must have this many agents.
    transcripts:
        Public transcripts of every auction completed so far.
    task_aborts:
        Quarantined tasks (degraded mode) with their recorded aborts.
    agent_rng_states:
        Per-agent private randomness streams (encoded ``getstate()``).
    agent_operations:
        Per-agent :meth:`~repro.crypto.modular.OperationCounter.snapshot`
        dictionaries at the boundary.
    network_metrics:
        :meth:`~repro.network.metrics.NetworkMetrics.as_dict` totals.
    round_index:
        The network's next synchronous round number.
    timeout_state:
        Extra :class:`~repro.network.asynchronous.TimeoutNetwork` wall
        state (``clock``/``late_messages``/``retries``/``recovered``),
        empty for plain synchronous networks.
    """

    num_tasks: int
    next_task: int
    degraded: bool
    num_agents: int
    transcripts: List[AuctionTranscript] = field(default_factory=list)
    task_aborts: Dict[int, ProtocolAbort] = field(default_factory=dict)
    agent_rng_states: List[List[Any]] = field(default_factory=list)
    agent_operations: List[Dict[str, int]] = field(default_factory=list)
    network_metrics: Dict[str, int] = field(default_factory=dict)
    round_index: int = 0
    timeout_state: Dict[str, Any] = field(default_factory=dict)

    # -- capture ---------------------------------------------------------------
    @classmethod
    def capture(cls, protocol: "DMWProtocol", num_tasks: int,
                next_task: int) -> "ProtocolCheckpoint":
        """Snapshot ``protocol`` at an auction boundary.

        ``next_task`` is the first auction the resumed run will execute
        (i.e. one past the last completed/quarantined task).
        """
        network = protocol.network
        timeout_state: Dict[str, Any] = {}
        for attr in ("clock", "late_messages", "retries", "recovered"):
            if hasattr(network, attr):
                timeout_state[attr] = getattr(network, attr)
        return cls(
            num_tasks=num_tasks,
            next_task=next_task,
            degraded=protocol._degraded,
            num_agents=protocol.parameters.num_agents,
            transcripts=list(protocol._transcripts),
            task_aborts=dict(protocol._task_aborts),
            agent_rng_states=[encode_rng_state(agent.rng.getstate())
                              for agent in protocol.agents],
            agent_operations=[agent.counter.snapshot()
                              for agent in protocol.agents],
            network_metrics=network.metrics.as_dict(),
            round_index=network.round_index,
            timeout_state=timeout_state,
        )

    # -- restore ---------------------------------------------------------------
    def apply(self, protocol: "DMWProtocol") -> None:
        """Restore this checkpoint into a freshly constructed protocol.

        The protocol must have been built exactly as the original (same
        parameters, same agent construction order); the checkpoint then
        overwrites the mutable state: rng streams, counters, transcripts,
        quarantines, and the network's accounting.
        """
        if protocol.parameters.num_agents != self.num_agents:
            raise ParameterError(
                "checkpoint was taken with %d agents, protocol has %d"
                % (self.num_agents, protocol.parameters.num_agents)
            )
        if len(self.agent_rng_states) != len(protocol.agents):
            raise ParameterError(
                "checkpoint holds %d rng states for %d agents"
                % (len(self.agent_rng_states), len(protocol.agents))
            )
        for agent, encoded, operations in zip(protocol.agents,
                                              self.agent_rng_states,
                                              self.agent_operations):
            agent.rng.setstate(decode_rng_state(encoded))
            agent.counter.restore(operations)
        # Completed auctions: re-establish the public per-task results the
        # payments phase reads (winner + second price; first price kept
        # for introspection parity).
        for transcript in self.transcripts:
            for agent in protocol.agents:
                state = agent.task_state(transcript.task)
                state.first_price = transcript.first_price
                state.winner = transcript.winner
                state.second_price = transcript.second_price
        protocol._transcripts = list(self.transcripts)
        protocol._task_aborts = dict(self.task_aborts)
        protocol._degraded = self.degraded
        # Network accounting: totals continue from the boundary.
        protocol.network.metrics = _metrics_from_totals(self.network_metrics)
        protocol.network.round_index = self.round_index
        for attr, value in self.timeout_state.items():
            if hasattr(protocol.network, attr):
                setattr(protocol.network, attr, value)


def _metrics_from_totals(totals: Dict[str, int]) -> NetworkMetrics:
    """Rebuild :class:`NetworkMetrics` from its ``as_dict`` totals."""
    metrics = NetworkMetrics()
    metrics.point_to_point_messages = totals.get("point_to_point_messages", 0)
    metrics.broadcast_events = totals.get("broadcast_events", 0)
    metrics.field_elements = totals.get("field_elements", 0)
    metrics.rounds = totals.get("rounds", 0)
    metrics.retransmissions = totals.get("retransmissions", 0)
    metrics.recovered_messages = totals.get("recovered_messages", 0)
    for key, value in totals.items():
        if key.startswith("messages[") and key.endswith("]"):
            metrics.by_kind[key[len("messages["):-1]] = value
    return metrics
