"""Checkpoint/resume: serializable protocol state at auction boundaries.

Both drivers that support checkpointing reach *quiescent* boundaries —
instants where every inbox is drained and no message is in flight:

* the **sequential driver** after each completed auction (a prefix
  frontier ``{0, ..., k-1}``);
* the **process-pool driver** (:mod:`repro.parallel`) after merging each
  shard — a *completed-auction frontier*, in general any subset of
  ``range(m)`` (tracked explicitly in :attr:`completed_tasks`).

At a boundary the only state that determines the rest of the execution
is (a) each agent's private randomness (per-task substreams derived from
``rng_root``, plus the residual stream state), (b) the resolved
transcripts so far, (c) the accumulated accounting (operation counters,
network metrics, wall clock), (d) the degraded-mode quarantine record,
and (e) the public-value cache.  :class:`ProtocolCheckpoint` captures
exactly that, so a crashed orchestrator can be restarted from the last
boundary and produce an outcome **identical** to the uninterrupted run:
same schedule, same payments, same transcripts, same operation counts,
same network totals, same ``cache_stats``
(``tests/test_checkpoint.py`` / ``tests/test_process_pool.py`` pin this
down).

What is deliberately *not* captured:

* Cryptographic secrets — shares, polynomials, commitments.  Completed
  auctions are summarised by their public transcript (winner and prices
  are all the payments phase needs), and the in-flight auction is simply
  re-run from its start, regenerating shares from the per-task rng
  substreams.  A checkpoint file therefore leaks nothing the bulletin
  board did not already reveal — the cache state in :attr:`cache_state`
  consists purely of bulletin-board-derivable values (commitment
  evaluations, Lagrange weights, memoised resolution results).
* The bulletin-board history.  Resuming restores the *outcome*-relevant
  state; a post-resume transcript audit only covers the auctions run
  since the restart.

Serialization lives in :mod:`repro.serialization` (format version 4,
document type ``dmw_checkpoint``; version-3 documents without the
frontier/cache fields remain loadable); this module holds only the
in-memory state transfer, keeping the dependency one-directional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

from ..network.metrics import NetworkMetrics
from .exceptions import ParameterError, ProtocolAbort
from .outcome import AuctionTranscript

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .protocol import DMWProtocol


def encode_rng_state(state: Any) -> List[Any]:
    """JSON-encode a ``random.Random.getstate()`` tuple.

    The Mersenne Twister state is ``(version, tuple_of_ints, gauss_next)``;
    JSON has no tuples, so both levels become lists.
    """
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def decode_rng_state(encoded: List[Any]) -> Any:
    """Invert :func:`encode_rng_state` back to a ``setstate`` tuple."""
    version, internal, gauss_next = encoded
    return (version, tuple(internal), gauss_next)


@dataclass
class ProtocolCheckpoint:
    """Everything needed to resume an execution at a quiescent boundary.

    Attributes
    ----------
    num_tasks:
        Total number of auctions the execution runs.
    next_task:
        One past the highest attempted task (kept for format-version-3
        compatibility; :meth:`completed_set` is authoritative).
    degraded:
        Whether the interrupted execution ran in graceful-degradation
        mode (a resume must use the same mode).
    num_agents:
        Sanity guard: the resuming protocol must have this many agents.
    transcripts:
        Public transcripts of every auction completed so far.
    task_aborts:
        Quarantined tasks (degraded mode) with their recorded aborts.
    agent_rng_states:
        Per-agent private randomness streams (encoded ``getstate()``).
    agent_operations:
        Per-agent :meth:`~repro.crypto.modular.OperationCounter.snapshot`
        dictionaries at the boundary.
    network_metrics:
        :meth:`~repro.network.metrics.NetworkMetrics.as_dict` totals.
    round_index:
        The network's next synchronous round number.
    timeout_state:
        Extra :class:`~repro.network.asynchronous.TimeoutNetwork` wall
        state (``clock``/``late_messages``/``retries``/``recovered``),
        empty for plain synchronous networks.
    completed_tasks:
        The completed-auction frontier: every task already attempted
        (completed or quarantined).  ``None`` on documents written before
        format version 4, in which case the prefix ``range(next_task)``
        is implied (see :meth:`completed_set`).
    cache_state:
        :meth:`~repro.crypto.fastexp.PublicValueCache.export_state`
        snapshot of the shared public-value cache (sequential driver), or
        a stats-only snapshot of the merged per-shard statistics
        (process-pool driver).  Restoring it makes a resumed run's
        ``cache_stats`` agree exactly with the uninterrupted run.
    """

    num_tasks: int
    next_task: int
    degraded: bool
    num_agents: int
    transcripts: List[AuctionTranscript] = field(default_factory=list)
    task_aborts: Dict[int, ProtocolAbort] = field(default_factory=dict)
    agent_rng_states: List[List[Any]] = field(default_factory=list)
    agent_operations: List[Dict[str, int]] = field(default_factory=list)
    network_metrics: Dict[str, int] = field(default_factory=dict)
    round_index: int = 0
    timeout_state: Dict[str, Any] = field(default_factory=dict)
    completed_tasks: Optional[List[int]] = None
    cache_state: Dict[str, Any] = field(default_factory=dict)

    def completed_set(self) -> Set[int]:
        """Tasks the resumed run must *not* re-execute.

        Version-4 documents carry the frontier explicitly; older
        documents imply the prefix ``range(next_task)``.
        """
        if self.completed_tasks is not None:
            return set(self.completed_tasks)
        return set(range(self.next_task))

    # -- capture ---------------------------------------------------------------
    @classmethod
    def capture(cls, protocol: "DMWProtocol", num_tasks: int,
                next_task: int) -> "ProtocolCheckpoint":
        """Snapshot ``protocol`` at an auction boundary.

        ``next_task`` is the first auction the resumed run will execute
        (i.e. one past the last completed/quarantined task).
        """
        network = protocol.network
        timeout_state: Dict[str, Any] = {}
        for attr in ("clock", "late_messages", "retries", "recovered"):
            if hasattr(network, attr):
                timeout_state[attr] = getattr(network, attr)
        completed = sorted({t.task for t in protocol._transcripts}
                           | set(protocol._task_aborts))
        cache_state: Dict[str, Any] = {}
        override = getattr(protocol, "_cache_stats_override", None)
        if override is not None:
            # Process-pool driver: per-shard caches die with their
            # workers; persist the merged cumulative statistics.
            cache_state = {"stats": dict(override)}
        elif protocol._shared_cache is not None:
            cache_state = protocol._shared_cache.export_state()
        return cls(
            num_tasks=num_tasks,
            next_task=next_task,
            degraded=protocol._degraded,
            num_agents=protocol.parameters.num_agents,
            transcripts=list(protocol._transcripts),
            task_aborts=dict(protocol._task_aborts),
            agent_rng_states=[encode_rng_state(agent.rng.getstate())
                              for agent in protocol.agents],
            agent_operations=[agent.counter.snapshot()
                              for agent in protocol.agents],
            network_metrics=network.metrics.as_dict(),
            round_index=network.round_index,
            timeout_state=timeout_state,
            completed_tasks=completed,
            cache_state=cache_state,
        )

    # -- restore ---------------------------------------------------------------
    def apply(self, protocol: "DMWProtocol") -> None:
        """Restore this checkpoint into a freshly constructed protocol.

        The protocol must have been built exactly as the original (same
        parameters, same agent construction order); the checkpoint then
        overwrites the mutable state: rng streams, counters, transcripts,
        quarantines, and the network's accounting.
        """
        if protocol.parameters.num_agents != self.num_agents:
            raise ParameterError(
                "checkpoint was taken with %d agents, protocol has %d"
                % (self.num_agents, protocol.parameters.num_agents)
            )
        if len(self.agent_rng_states) != len(protocol.agents):
            raise ParameterError(
                "checkpoint holds %d rng states for %d agents"
                % (len(self.agent_rng_states), len(protocol.agents))
            )
        for agent, encoded, operations in zip(protocol.agents,
                                              self.agent_rng_states,
                                              self.agent_operations):
            agent.rng.setstate(decode_rng_state(encoded))
            agent.counter.restore(operations)
        # Completed auctions: re-establish the public per-task results the
        # payments phase reads (winner + second price; first price kept
        # for introspection parity).
        for transcript in self.transcripts:
            for agent in protocol.agents:
                state = agent.task_state(transcript.task)
                state.first_price = transcript.first_price
                state.winner = transcript.winner
                state.second_price = transcript.second_price
        protocol._transcripts = list(self.transcripts)
        protocol._task_aborts = dict(self.task_aborts)
        protocol._degraded = self.degraded
        # Network accounting: totals continue from the boundary.
        protocol.network.metrics = _metrics_from_totals(self.network_metrics)
        protocol.network.round_index = self.round_index
        for attr, value in self.timeout_state.items():
            if hasattr(protocol.network, attr):
                setattr(protocol.network, attr, value)
        # Public-value cache: restore counters (and, for full sequential
        # snapshots, the memoised entries) so the resumed run's
        # ``cache_stats`` agree exactly with the uninterrupted run.
        if self.cache_state and protocol._shared_cache is not None:
            protocol._shared_cache.import_state(self.cache_state)


def _metrics_from_totals(totals: Dict[str, int]) -> NetworkMetrics:
    """Rebuild :class:`NetworkMetrics` from its ``as_dict`` totals."""
    metrics = NetworkMetrics()
    metrics.point_to_point_messages = totals.get("point_to_point_messages", 0)
    metrics.broadcast_events = totals.get("broadcast_events", 0)
    metrics.field_elements = totals.get("field_elements", 0)
    metrics.rounds = totals.get("rounds", 0)
    metrics.retransmissions = totals.get("retransmissions", 0)
    metrics.recovered_messages = totals.get("recovered_messages", 0)
    for key, value in totals.items():
        if key.startswith("messages[") and key.endswith("]"):
            metrics.by_kind[key[len("messages["):-1]] = value
    return metrics
