"""Distributed substrate: synchronous network simulation with accounting."""

from .asynchronous import NO_RETRY, RetryPolicy, TimeoutNetwork
from .faults import FaultPlan, obedient_plan
from .latency import (
    LatencyModel,
    Timeline,
    estimate_protocol_latency,
    timeline_for_rounds,
)
from .message import BROADCAST, Message, estimate_bytes
from .metrics import NetworkMetrics
from .simulator import SynchronousNetwork

__all__ = [
    "BROADCAST",
    "FaultPlan",
    "LatencyModel",
    "Message",
    "NO_RETRY",
    "NetworkMetrics",
    "RetryPolicy",
    "SynchronousNetwork",
    "TimeoutNetwork",
    "Timeline",
    "estimate_bytes",
    "estimate_protocol_latency",
    "obedient_plan",
    "timeline_for_rounds",
]
