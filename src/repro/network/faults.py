"""Network-level fault injection.

DMW tolerates up to ``c`` faulty participants; the substrate therefore
needs a way to *be* faulty.  A :class:`FaultPlan` describes which agents
crash (stop transmitting from a given round) and which directed links drop
or corrupt messages.  The simulator consults the plan on every send.

Protocol-level deviations (sending *wrong* shares, withholding a specific
value while otherwise participating) are modelled by the deviating agent
strategies in :mod:`repro.core.deviant` — the fault plan is for the
substrate faults those strategies do not cover.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from .message import Message

#: A corruption hook receives the message and returns a replacement.
Corruptor = Callable[[Message], Message]


@dataclass
class FaultPlan:
    """Declarative description of substrate faults.

    Attributes
    ----------
    crashed_from_round:
        ``agent -> round``: the agent sends nothing from that round on
        (crash-stop).
    dropped_links:
        Directed ``(sender, recipient)`` pairs whose messages vanish.
    drop_probability:
        Probability that any individual unicast is lost (requires ``rng``).
    corruptors:
        ``(sender, recipient) -> hook`` rewriting messages in flight.
    rng:
        Randomness source for probabilistic drops.
    """

    crashed_from_round: Dict[int, int] = field(default_factory=dict)
    dropped_links: Set[Tuple[int, int]] = field(default_factory=set)
    drop_probability: float = 0.0
    corruptors: Dict[Tuple[int, int], Corruptor] = field(default_factory=dict)
    rng: Optional[random.Random] = None

    def __post_init__(self) -> None:
        if self.drop_probability and self.rng is None:
            raise ValueError("probabilistic drops need an rng")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")

    def sender_is_crashed(self, sender: int, round_index: int) -> bool:
        """Return True if ``sender`` has crashed by ``round_index``."""
        crash_round = self.crashed_from_round.get(sender)
        return crash_round is not None and round_index >= crash_round

    def transform(self, message: Message,
                  round_index: int) -> Optional[Message]:
        """Apply the plan to one unicast delivery.

        Returns the (possibly corrupted) message, or ``None`` if dropped.
        Broadcast messages are filtered per-recipient by the simulator,
        which calls this once per expanded copy.
        """
        if self.sender_is_crashed(message.sender, round_index):
            return None
        link = (message.sender, message.recipient)
        if link in self.dropped_links:
            return None
        if self.drop_probability and self.rng.random() < self.drop_probability:
            return None
        corruptor = self.corruptors.get(link)
        if corruptor is not None:
            return corruptor(message)
        return message


#: A plan with no faults at all (the obedient network of Theorem 3).
def obedient_plan() -> FaultPlan:
    """Return a fresh no-fault plan."""
    return FaultPlan()
