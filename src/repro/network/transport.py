"""Pluggable transport: the seam between the protocol driver and the wire.

The DMW driver steps every agent state machine through the same
round-barrier loop — *send* (queue this round's messages), *step* (the
synchronization barrier), *receive* (drain the inbox) — and everything
below that loop is a :class:`Transport`.  Two implementations ship:

* :class:`InProcessTransport` — the historical simulator
  (:class:`~repro.network.simulator.SynchronousNetwork` or
  :class:`~repro.network.asynchronous.TimeoutNetwork`) behind the
  interface.  Bit-identical to the pre-refactor driver in outcomes,
  transcripts, per-agent counters, and flight summaries
  (``tests/test_transport.py`` pins this against a golden fixture).
* :class:`~repro.network.asyncio_transport.AsyncioSocketTransport` —
  localhost TCP with one asyncio reader task per participant, honoring
  :class:`~repro.network.asynchronous.TimeoutNetwork`'s barrier/timeout/
  retry failure model exactly.

Contract (see ``docs/TRANSPORTS.md``):

* ``send``/``publish`` queue; nothing moves before ``step``.
* ``step`` realizes one synchronization barrier: every queued message is
  expanded, charged to :class:`~repro.network.metrics.NetworkMetrics`,
  run through the fault/latency models, and delivered (or withheld);
  ``round_index`` advances exactly once.
* ``receive`` drains a participant's inbox (optionally by kind) without
  any network activity.
* ``network_view()`` returns the object the driver exposes as
  ``protocol.network`` — the wrapped simulator in-process, the transport
  itself for socket transports — so checkpoints, the process pool, and
  the observability bindings stay transport-agnostic via duck typing.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .faults import FaultPlan
from .message import Message
from .simulator import SynchronousNetwork


class TransportError(RuntimeError):
    """A transport-level failure (socket loss, handshake failure, ...)."""


class Transport:
    """Abstract round-barrier transport (see module docstring)."""

    name = "abstract"

    def send(self, sender: int, recipient: int, kind: str, payload: Any,
             field_elements: int = 1) -> None:
        """Queue a private point-to-point message for the next barrier."""
        raise NotImplementedError

    def publish(self, sender: int, kind: str, payload: Any,
                field_elements: int = 1) -> None:
        """Queue a published (broadcast) message for the next barrier."""
        raise NotImplementedError

    def step(self) -> int:
        """Run one round barrier; returns the number of copies delivered."""
        raise NotImplementedError

    def receive(self, agent: int, kind: Optional[str] = None
                ) -> List[Message]:
        """Drain a participant's inbox, optionally filtered by kind."""
        raise NotImplementedError

    def network_view(self) -> Any:
        """The object exposed as ``protocol.network`` (duck-typed state)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (no-op by default)."""


class InProcessTransport(Transport):
    """The in-process simulator behind the transport interface.

    A thin delegation shim: every call maps one-to-one onto the wrapped
    :class:`~repro.network.simulator.SynchronousNetwork` (or subclass),
    so driver behaviour over this transport is bit-identical to calling
    the network directly.
    """

    name = "inprocess"

    def __init__(self, network: SynchronousNetwork) -> None:
        self.network = network

    def send(self, sender: int, recipient: int, kind: str, payload: Any,
             field_elements: int = 1) -> None:
        self.network.send(sender, recipient, kind, payload,
                          field_elements=field_elements)

    def publish(self, sender: int, kind: str, payload: Any,
                field_elements: int = 1) -> None:
        self.network.publish(sender, kind, payload,
                             field_elements=field_elements)

    def step(self) -> int:
        return self.network.deliver()

    def receive(self, agent: int, kind: Optional[str] = None
                ) -> List[Message]:
        return self.network.receive(agent, kind)

    def network_view(self) -> SynchronousNetwork:
        return self.network

    @property
    def num_agents(self) -> int:
        return self.network.num_agents

    @property
    def num_participants(self) -> int:
        return self.network.num_participants


#: Names accepted by :func:`create_transport` (and ``dmw run --transport``).
TRANSPORT_NAMES = ("inprocess", "asyncio")


def create_transport(name: str, num_agents: int,
                     fault_plan: Optional[FaultPlan] = None,
                     extra_participants: int = 1,
                     **kwargs: Any) -> Transport:
    """Build a transport by name.

    ``inprocess`` wraps a fresh :class:`SynchronousNetwork`; ``asyncio``
    builds an :class:`~repro.network.asyncio_transport
    .AsyncioSocketTransport` (extra keyword arguments — ``round_timeout``,
    ``latency_model``, ``retry_policy`` — are forwarded to it).
    """
    if name == "inprocess":
        if kwargs:
            raise ValueError("inprocess transport takes no extra options: %s"
                             % sorted(kwargs))
        return InProcessTransport(SynchronousNetwork(
            num_agents, fault_plan=fault_plan,
            extra_participants=extra_participants))
    if name == "asyncio":
        # Imported lazily so the simulator path never touches asyncio.
        from .asyncio_transport import AsyncioSocketTransport
        return AsyncioSocketTransport(num_agents, fault_plan=fault_plan,
                                      extra_participants=extra_participants,
                                      **kwargs)
    raise ValueError("unknown transport %r (expected one of %s)"
                     % (name, ", ".join(TRANSPORT_NAMES)))
