"""Latency models: from synchronous rounds to wall-clock completion time.

The simulator executes DMW in synchronous rounds; a deployment pays real
time for every round — the barrier (paper step II.4) waits for the
*slowest* message of the round.  A :class:`LatencyModel` assigns each
directed link a delay distribution; :func:`timeline_for_rounds` replays a
recorded execution's message schedule and returns per-round durations and
the total completion time.

This turns Theorem 11's message counts into an end-to-end latency
estimate and quantifies the *constant* cost of decentralization: DMW pays
``4m + 1`` barrier rounds against the centralized mechanism's 2, on top
of its factor-``n`` message volume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple

from .message import Message

if TYPE_CHECKING:  # avoid an import cycle with asynchronous.py at runtime
    from .simulator import SynchronousNetwork

#: A sampler takes (sender, recipient) and returns a delay in seconds.
DelaySampler = Callable[[int, int], float]


class LatencyModel:
    """Per-link message delays.

    Parameters
    ----------
    rng:
        Randomness source for the built-in distributions.
    base:
        Minimum one-way delay (propagation floor).
    jitter:
        Uniform extra delay in ``[0, jitter]`` drawn per message.
    per_link_scale:
        Optional ``{(sender, recipient): multiplier}`` to model slow links
        (defaults to 1.0 everywhere).
    """

    def __init__(self, rng: random.Random, base: float = 0.010,
                 jitter: float = 0.010,
                 per_link_scale: Optional[Dict[Tuple[int, int],
                                               float]] = None) -> None:
        if base < 0 or jitter < 0:
            raise ValueError("delays must be non-negative")
        self.rng = rng
        self.base = base
        self.jitter = jitter
        self.per_link_scale = per_link_scale or {}

    def sample(self, sender: int, recipient: int) -> float:
        """Draw one message's delay."""
        scale = self.per_link_scale.get((sender, recipient), 1.0)
        return scale * (self.base + self.rng.uniform(0.0, self.jitter))


@dataclass(frozen=True)
class Timeline:
    """Wall-clock reconstruction of a synchronous execution.

    Attributes
    ----------
    round_durations:
        Seconds per synchronous round (the slowest message of each round,
        or ``epsilon`` for computation-only rounds).
    total_seconds:
        Sum of the round durations.
    slowest_round:
        Index of the longest round.
    """

    round_durations: Tuple[float, ...]
    total_seconds: float
    slowest_round: int


def timeline_for_rounds(messages: Sequence[Message], num_rounds: int,
                        model: LatencyModel,
                        num_participants: int,
                        empty_round_duration: float = 0.0) -> Timeline:
    """Replay delivered messages under a latency model.

    Parameters
    ----------
    messages:
        The messages of the execution, stamped with ``round_sent`` (the
        simulator's bulletin board plus any recorded unicasts; broadcasts
        are expanded to their per-recipient copies here).
    num_rounds:
        Total rounds executed (``network.metrics.rounds``).
    model:
        The latency model.
    num_participants:
        Fan-out for expanding broadcast messages.
    empty_round_duration:
        Duration charged for rounds with no recorded messages.
    """
    durations = [empty_round_duration] * num_rounds
    for message in messages:
        round_index = message.round_sent
        if not 0 <= round_index < num_rounds:
            continue
        if message.is_broadcast:
            recipients = [k for k in range(num_participants)
                          if k != message.sender]
        else:
            recipients = [message.recipient]
        for recipient in recipients:
            delay = model.sample(message.sender, recipient)
            if delay > durations[round_index]:
                durations[round_index] = delay
    total = sum(durations)
    slowest = max(range(num_rounds), key=lambda r: durations[r]) \
        if num_rounds else 0
    return Timeline(round_durations=tuple(durations),
                    total_seconds=total, slowest_round=slowest)


def estimate_protocol_latency(network: "SynchronousNetwork",
                              model: LatencyModel) -> Timeline:
    """Estimate the completion time of a finished simulator execution.

    Exact when the network was created with ``record_deliveries=True``
    (every unicast copy is replayed); otherwise it falls back to the
    bulletin board, covering all published traffic but approximating
    rounds that carried only private messages.
    """
    if network.delivery_log:
        # The log holds expanded unicast copies already (never broadcasts).
        return timeline_for_rounds(network.delivery_log,
                                   network.metrics.rounds, model,
                                   network.num_participants)
    return timeline_for_rounds(network.published(),
                               network.metrics.rounds, model,
                               network.num_participants)
