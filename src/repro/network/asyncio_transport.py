"""Asyncio socket transport: the round barrier over localhost TCP.

:class:`AsyncioSocketTransport` realizes the :class:`~repro.network
.transport.Transport` contract with real sockets: a hub accepts one TCP
connection per participant (one asyncio reader task per endpoint on both
sides of each connection), and every protocol message crosses the wire
as a length-prefixed pickle frame.  One :meth:`step` call is one
synchronization barrier:

1. every queued message is written as a ``submit`` frame on its sender's
   connection;
2. the hub collects the round's submissions and routes them in global
   submission order — the same order the in-process simulator drains its
   outbox, so fault-plan and latency RNG consumption match exactly;
3. each routed copy runs through the *same* failure model as
   :class:`~repro.network.asynchronous.TimeoutNetwork` — crash plans,
   per-copy fault transforms, sampled latency against ``round_timeout``,
   :class:`~repro.network.asynchronous.RetryPolicy` grace sub-rounds
   with the same clock/duration formulas — and surviving copies are
   written to the recipient's socket as ``copy`` frames;
4. the barrier releases when every delivered copy has been acknowledged
   (``ack`` frames); a socket-level failure to do so within a generous
   wall-clock bound raises :class:`~repro.network.transport
   .TransportError`.

The simulated clock (``clock``/``round_durations``) advances by
``TimeoutNetwork``'s formulas, not wall time: the sockets carry the
bytes, the latency model decides the semantics.  The transport is its
own ``network_view()`` — it exposes the full duck-typed state surface
(``metrics``, ``round_index``, ``clock``, ``late_messages``,
``retries``, ``recovered``, ``round_durations``, ``bulletin_board``,
``observer``, ``flight``, ``broadcast_to_extras``) that checkpoints and
the observability bindings read.
"""

from __future__ import annotations

import asyncio
import pickle
import random
import struct
from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..obs.flight import (EVENT_DELIVER, EVENT_DROP, EVENT_LATE,
                          EVENT_RECOVERY, EVENT_RETRANSMIT, EVENT_SEND,
                          NULL_FLIGHT, FlightRecorder)
from ..obs.spans import NULL_RECORDER
from .asynchronous import NO_RETRY, RetryPolicy
from .faults import FaultPlan, obedient_plan
from .latency import LatencyModel
from .message import BROADCAST, Message
from .metrics import NetworkMetrics
from .transport import Transport, TransportError

_HEADER = struct.Struct(">I")


def _encode_frame(frame: Tuple[Any, ...]) -> bytes:
    body = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(body)) + body


async def _read_frame(reader: asyncio.StreamReader
                      ) -> Optional[Tuple[Any, ...]]:
    try:
        header = await reader.readexactly(_HEADER.size)
        body = await reader.readexactly(_HEADER.unpack(header)[0])
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return pickle.loads(body)


class AsyncioSocketTransport(Transport):
    """Localhost TCP transport with TimeoutNetwork's failure model.

    Parameters
    ----------
    num_agents, fault_plan, extra_participants:
        As for :class:`~repro.network.simulator.SynchronousNetwork`.
    latency_model:
        Per-copy delay sampler; defaults to a zero-latency model (every
        copy makes the barrier).
    round_timeout:
        Simulated barrier duration ``T`` — copies whose sampled delay
        exceeds it miss the barrier, exactly as in ``TimeoutNetwork``.
    retry_policy:
        Optional :class:`RetryPolicy`; defaults to :data:`NO_RETRY`.
    host:
        Interface to bind the hub on (loopback by default).
    """

    name = "asyncio"

    def __init__(self, num_agents: int,
                 fault_plan: Optional[FaultPlan] = None,
                 extra_participants: int = 1,
                 latency_model: Optional[LatencyModel] = None,
                 round_timeout: float = 1.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 host: str = "127.0.0.1") -> None:
        if num_agents < 1:
            raise ValueError("need at least one agent")
        if extra_participants < 0:
            raise ValueError("extra_participants must be non-negative")
        if round_timeout <= 0:
            raise ValueError("round timeout must be positive")
        self.num_agents = num_agents
        self.num_participants = num_agents + extra_participants
        self.broadcast_to_extras = False
        self.fault_plan = fault_plan or obedient_plan()
        self.latency_model = latency_model or LatencyModel(
            random.Random(0), base=0.0, jitter=0.0)
        self.round_timeout = round_timeout
        self.retry_policy = retry_policy or NO_RETRY
        self.metrics = NetworkMetrics()
        self.bulletin_board: List[Message] = []
        self.round_index = 0
        self.clock = 0.0
        self.late_messages = 0
        self.retries = 0
        self.recovered = 0
        self.round_durations: List[float] = []
        self.observer = NULL_RECORDER
        self.flight: FlightRecorder = NULL_FLIGHT
        self._host = host
        self._seq = 0
        self._copy_seq = 0
        self._pending: List[Tuple[int, Message]] = []
        self._inboxes: Dict[int, List[Message]] = defaultdict(list)
        self._submissions: List[Tuple[int, Message]] = []
        self._acks: Set[int] = set()
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._server: Optional[asyncio.AbstractServer] = None
        self._hub_writers: Dict[int, asyncio.StreamWriter] = {}
        self._client_writers: Dict[int, asyncio.StreamWriter] = {}
        self._tasks: List[asyncio.Task] = []
        self._frame_event = asyncio.Event()
        try:
            self._loop.run_until_complete(self._start())
        except BaseException:
            # A half-built transport (e.g. the hello barrier timed out)
            # must not leak its server socket, connections, reader tasks
            # or private event loop: tear down whatever _start managed
            # to create before propagating.
            self.close()
            raise

    # -- connection setup -----------------------------------------------------
    async def _start(self) -> None:
        hellos: asyncio.Queue = asyncio.Queue()

        async def handle(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
            hello = await _read_frame(reader)
            if hello is None or hello[0] != "hello":
                writer.close()
                return
            pid = hello[1]
            self._hub_writers[pid] = writer
            await hellos.put(pid)
            self._tasks.append(
                self._loop.create_task(self._hub_reader(reader)))

        self._server = await asyncio.start_server(handle, host=self._host,
                                                  port=0)
        port = self._server.sockets[0].getsockname()[1]
        for pid in range(self.num_participants):
            reader, writer = await asyncio.open_connection(self._host, port)
            self._client_writers[pid] = writer
            writer.write(_encode_frame(("hello", pid)))
            await writer.drain()
            self._tasks.append(
                self._loop.create_task(self._endpoint_reader(pid, reader)))
        connected = set()
        while len(connected) < self.num_participants:
            connected.add(await asyncio.wait_for(hellos.get(), 10.0))

    async def _hub_reader(self, reader: asyncio.StreamReader) -> None:
        """Hub side of one connection: collect submit and ack frames."""
        while True:
            frame = await _read_frame(reader)
            if frame is None:
                return
            if frame[0] == "submit":
                self._submissions.append((frame[1], frame[2]))
            elif frame[0] == "ack":
                self._acks.add(frame[1])
            self._frame_event.set()

    async def _endpoint_reader(self, pid: int,
                               reader: asyncio.StreamReader) -> None:
        """Endpoint side of one connection: absorb copies, acknowledge."""
        while True:
            frame = await _read_frame(reader)
            if frame is None:
                return
            if frame[0] == "copy":
                copy_id, message = frame[1], frame[2]
                self._inboxes[pid].append(message)
                writer = self._client_writers[pid]
                writer.write(_encode_frame(("ack", copy_id)))
                await writer.drain()

    # -- transmission primitives ----------------------------------------------
    def _check_participant(self, participant: int, role: str) -> None:
        if not 0 <= participant < self.num_participants:
            raise ValueError("invalid %s id %d" % (role, participant))

    def send(self, sender: int, recipient: int, kind: str, payload: Any,
             field_elements: int = 1) -> None:
        self._check_participant(sender, "sender")
        self._check_participant(recipient, "recipient")
        if sender == recipient:
            raise ValueError("agents do not message themselves")
        self._pending.append((self._seq, Message(
            sender=sender, recipient=recipient, kind=kind, payload=payload,
            field_elements=field_elements)))
        self._seq += 1

    def publish(self, sender: int, kind: str, payload: Any,
                field_elements: int = 1) -> None:
        self._check_participant(sender, "sender")
        self._pending.append((self._seq, Message(
            sender=sender, recipient=BROADCAST, kind=kind, payload=payload,
            field_elements=field_elements)))
        self._seq += 1

    def _broadcast_recipients(self, sender: int) -> List[int]:
        limit = (self.num_participants if self.broadcast_to_extras
                 else self.num_agents)
        return [a for a in range(limit) if a != sender]

    # -- the round barrier ----------------------------------------------------
    def step(self) -> int:
        if self._closed:
            raise TransportError("transport is closed")
        return self._loop.run_until_complete(self._step_async())

    def _wall_bound(self) -> float:
        """Real-time bound on socket progress (not the simulated clock)."""
        return max(5.0, self.round_timeout)

    async def _await_frames(self, done: Callable[[], bool]) -> None:
        """Wait until ``done()`` holds, re-checking after every frame."""
        try:
            while not done():
                self._frame_event.clear()
                await asyncio.wait_for(self._frame_event.wait(),
                                       self._wall_bound())
        except asyncio.TimeoutError:
            raise TransportError(
                "socket barrier stalled: round %d did not complete within "
                "%.1fs of wall time" % (self.round_index, self._wall_bound()))

    def _transmit(self, recipient: int, message: Message,
                  expected_acks: Set[int]) -> None:
        """Write one surviving copy to its recipient's socket."""
        copy_id = self._copy_seq
        self._copy_seq += 1
        expected_acks.add(copy_id)
        self._hub_writers[recipient].write(
            _encode_frame(("copy", copy_id, message)))

    async def _step_async(self) -> int:
        expected = len(self._pending)
        self._submissions = []
        self._acks = set()
        for seq, message in self._pending:
            self._client_writers[message.sender].write(
                _encode_frame(("submit", seq, message)))
        self._pending = []
        for writer in self._client_writers.values():
            await writer.drain()
        await self._await_frames(lambda: len(self._submissions) >= expected)
        # Route in global submission order: identical to the in-process
        # simulator's outbox drain, so RNG consumption and metrics match.
        queued = [message for _, message in
                  sorted(self._submissions, key=lambda pair: pair[0])]

        delivered = 0
        flight = self.flight
        slowest_on_time = 0.0
        withheld_this_round = 0
        expected_acks: Set[int] = set()
        pending: List[Tuple[Message, Optional[int]]] = []
        for message in queued:
            if self.fault_plan.sender_is_crashed(message.sender,
                                                 self.round_index):
                if message.is_broadcast:
                    withheld_this_round += len(
                        self._broadcast_recipients(message.sender))
                else:
                    withheld_this_round += 1
                continue
            stamped = message.with_round(self.round_index)
            if message.is_broadcast:
                self.bulletin_board.append(stamped)
                recipients = self._broadcast_recipients(message.sender)
                self.metrics.record(stamped, self.num_participants,
                                    copies=len(recipients))
            else:
                recipients = [message.recipient]
                self.metrics.record(stamped, self.num_participants)
            for recipient in recipients:
                unicast = Message(sender=stamped.sender, recipient=recipient,
                                  kind=stamped.kind, payload=stamped.payload,
                                  field_elements=stamped.field_elements,
                                  round_sent=self.round_index)
                sent_seq: Optional[int] = None
                if flight.enabled:
                    sent = flight.record(
                        EVENT_SEND, round_index=self.round_index,
                        kind=unicast.kind, sender=unicast.sender,
                        receiver=recipient,
                        field_elements=unicast.field_elements)
                    sent_seq = sent.seq if sent is not None else None
                final = self.fault_plan.transform(unicast, self.round_index)
                if final is None:
                    withheld_this_round += 1
                    if flight.enabled:
                        flight.record(EVENT_DROP,
                                      round_index=self.round_index,
                                      kind=unicast.kind,
                                      sender=unicast.sender,
                                      receiver=recipient,
                                      field_elements=unicast.field_elements,
                                      link=sent_seq, detail="fault_plan")
                    continue
                delay = self.latency_model.sample(stamped.sender, recipient)
                if delay > self.round_timeout:
                    pending.append((final, sent_seq))
                    if flight.enabled:
                        flight.record(EVENT_LATE,
                                      round_index=self.round_index,
                                      kind=final.kind, sender=final.sender,
                                      receiver=recipient,
                                      field_elements=final.field_elements,
                                      link=sent_seq, detail="missed_barrier")
                    continue
                slowest_on_time = max(slowest_on_time, delay)
                self._transmit(recipient, final, expected_acks)
                delivered += 1
                if flight.enabled:
                    flight.record(EVENT_DELIVER, round_index=self.round_index,
                                  kind=final.kind, sender=final.sender,
                                  receiver=recipient,
                                  field_elements=final.field_elements,
                                  link=sent_seq)
        missing = withheld_this_round + len(pending)
        duration = self.round_timeout if missing else slowest_on_time
        retries_this_round = 0
        recovered_this_round = 0
        for attempt in range(1, self.retry_policy.max_attempts):
            if not pending:
                break
            window = self.retry_policy.grace_window(self.round_timeout,
                                                    attempt)
            still_pending: List[Tuple[Message, Optional[int]]] = []
            slowest_recovered = 0.0
            for copy, sent_seq in pending:
                self.metrics.record_retransmission(copy)
                retries_this_round += 1
                if flight.enabled:
                    flight.record(EVENT_RETRANSMIT,
                                  round_index=self.round_index,
                                  kind=copy.kind, sender=copy.sender,
                                  receiver=copy.recipient,
                                  field_elements=copy.field_elements,
                                  attempt=attempt, link=sent_seq)
                delay = self.latency_model.sample(copy.sender,
                                                  copy.recipient)
                if delay > window:
                    still_pending.append((copy, sent_seq))
                    continue
                slowest_recovered = max(slowest_recovered, delay)
                self._transmit(copy.recipient, copy, expected_acks)
                self.metrics.record_recovery()
                recovered_this_round += 1
                delivered += 1
                if flight.enabled:
                    flight.record(EVENT_RECOVERY,
                                  round_index=self.round_index,
                                  kind=copy.kind, sender=copy.sender,
                                  receiver=copy.recipient,
                                  field_elements=copy.field_elements,
                                  attempt=attempt, link=sent_seq)
            duration += window if still_pending else slowest_recovered
            pending = still_pending
        if flight.enabled:
            for copy, sent_seq in pending:
                flight.record(EVENT_DROP, round_index=self.round_index,
                              kind=copy.kind, sender=copy.sender,
                              receiver=copy.recipient,
                              field_elements=copy.field_elements,
                              link=sent_seq, detail="late")
        # Ack barrier: every copy put on the wire must come back
        # acknowledged before the round closes.
        for writer in self._hub_writers.values():
            await writer.drain()
        await self._await_frames(lambda: expected_acks <= self._acks)
        late_this_round = len(pending)
        self.late_messages += late_this_round
        self.retries += retries_this_round
        self.recovered += recovered_this_round
        self.round_durations.append(duration)
        self.clock += duration
        self.metrics.record_round()
        if self.observer.enabled:
            self.observer.event("network_round", round=self.round_index,
                                messages=len(queued), delivered=delivered,
                                late=late_this_round,
                                withheld=withheld_this_round,
                                retries=retries_this_round,
                                recovered=recovered_this_round,
                                barrier_duration=duration)
        self.round_index += 1
        return delivered

    # -- reception ------------------------------------------------------------
    def receive(self, agent: int, kind: Optional[str] = None
                ) -> List[Message]:
        self._check_participant(agent, "agent")
        inbox = self._inboxes[agent]
        if kind is None:
            self._inboxes[agent] = []
            return inbox
        matched = [m for m in inbox if m.kind == kind]
        self._inboxes[agent] = [m for m in inbox if m.kind != kind]
        return matched

    def peek(self, agent: int) -> Tuple[Message, ...]:
        self._check_participant(agent, "agent")
        return tuple(self._inboxes[agent])

    def published(self, kind: Optional[str] = None) -> List[Message]:
        if kind is None:
            return list(self.bulletin_board)
        return [m for m in self.bulletin_board if m.kind == kind]

    # -- lifecycle ------------------------------------------------------------
    def network_view(self) -> "AsyncioSocketTransport":
        return self

    def close(self) -> None:
        """Tear down the transport; safe to call any number of times.

        Drains every reader task and waits for every socket to finish
        closing before the private event loop is closed, so repeated
        in-process runs (the ``dmw serve`` daemon) never accumulate
        pending tasks, unclosed transports, or ``ResourceWarning``s.
        """
        if self._closed:
            return
        self._closed = True
        if not self._loop.is_closed() and not self._loop.is_running():
            self._loop.run_until_complete(self._shutdown())
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()
        self._tasks = []
        self._hub_writers = {}
        self._client_writers = {}
        self._server = None

    def __del__(self) -> None:
        # Safety net for transports dropped without close() (an aborted
        # run unwinding past its finally).  Best-effort only: if another
        # event loop is running on this thread we cannot drive ours, so
        # leave cleanup to interpreter-level finalizers.
        try:
            if not self._closed:
                self.close()
        except Exception:
            pass

    async def _shutdown(self) -> None:
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        writers = (list(self._client_writers.values())
                   + list(self._hub_writers.values()))
        for writer in writers:
            writer.close()
        for writer in writers:
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
