"""Timeout semantics: running the synchronous protocol on slow links.

DMW is specified with implicit synchronization barriers; a deployment
realizes a barrier with a *timeout*: wait up to ``T`` for the round's
messages, treat anything later as withheld.  :class:`TimeoutNetwork`
extends the synchronous simulator with exactly that: every unicast's
arrival time is sampled from a :class:`~repro.network.latency.LatencyModel`,
messages arriving after the round timeout are dropped (and counted), and
a wall clock advances by the per-round barrier time.

On top of the bare timeout, a :class:`RetryPolicy` adds bounded
retransmission with backoff: a unicast copy whose sampled delay exceeds
the barrier is re-sent in a *grace sub-round* (with an exponentially
widening window) before being declared withheld.  Every retransmission
is charged to the :class:`~repro.network.metrics.NetworkMetrics` at full
price and tallied separately (``retransmissions``/``recovered_messages``),
and the wall clock accounts each grace window exactly — retries make the
execution survivable under transient slowness without ever hiding their
cost.  The default :data:`NO_RETRY` policy reproduces the bare-timeout
behaviour bit for bit.

This closes the loop on the paper's own future work ("implementing DMW
in a simulated distributed environment") at the fidelity the protocol's
synchronous structure admits: the interesting asynchrony — a slow agent
being indistinguishable from a withholding one — is captured, and the
safety dichotomy (correct outcome or abort, never a wrong outcome) can
be tested under it (``tests/test_asynchronous.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..obs.flight import (EVENT_DELIVER, EVENT_DROP, EVENT_LATE,
                          EVENT_RECOVERY, EVENT_RETRANSMIT, EVENT_SEND)
from .faults import FaultPlan
from .latency import LatencyModel
from .message import Message
from .simulator import SynchronousNetwork


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission with multiplicative backoff.

    Attributes
    ----------
    max_attempts:
        Total transmission attempts per unicast copy, including the
        original send.  ``1`` disables retransmission entirely (the
        historical bare-timeout behaviour).
    backoff:
        Grace-window multiplier: retry attempt ``k`` (1-based) waits up
        to ``round_timeout * backoff**k`` for the re-sent copy.  Must be
        at least 1.
    """

    max_attempts: int = 1
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff < 1.0:
            raise ValueError("backoff multiplier must be at least 1")

    @property
    def max_retries(self) -> int:
        """Retransmission attempts beyond the original send."""
        return self.max_attempts - 1

    def grace_window(self, round_timeout: float, attempt: int) -> float:
        """Barrier extension granted to retry ``attempt`` (1-based)."""
        return round_timeout * (self.backoff ** attempt)


#: The policy with no retransmission at all (bare-timeout semantics).
NO_RETRY = RetryPolicy(max_attempts=1)


class TimeoutNetwork(SynchronousNetwork):
    """A synchronous network whose barriers are realized by timeouts.

    Parameters
    ----------
    num_agents, fault_plan, extra_participants:
        As for :class:`~repro.network.simulator.SynchronousNetwork`.
    latency_model:
        Per-message delay sampler.
    round_timeout:
        Barrier duration ``T``: messages with sampled delay above ``T``
        miss the base barrier (and, absent retries, are dropped as late).
    retry_policy:
        Optional :class:`RetryPolicy`; defaults to :data:`NO_RETRY`.
    """

    def __init__(self, num_agents: int, latency_model: LatencyModel,
                 round_timeout: float,
                 fault_plan: Optional[FaultPlan] = None,
                 extra_participants: int = 0,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        super().__init__(num_agents, fault_plan=fault_plan,
                         extra_participants=extra_participants)
        if round_timeout <= 0:
            raise ValueError("round timeout must be positive")
        self.latency_model = latency_model
        self.round_timeout = round_timeout
        self.retry_policy = retry_policy or NO_RETRY
        #: Wall clock: sum of per-round barrier durations (grace
        #: sub-rounds included).
        self.clock = 0.0
        #: Unicast copies finally dropped for arriving after the timeout
        #: (post-retry: a copy recovered by a retransmission is not late).
        self.late_messages = 0
        #: Retransmission attempts across all grace sub-rounds.
        self.retries = 0
        #: Late copies that a retransmission delivered in time.
        self.recovered = 0
        #: Per-round barrier durations (timeout + grace extensions, or
        #: the slowest on-time arrival when nothing was missing).
        self.round_durations: List[float] = []

    def deliver(self) -> int:
        """Deliver the round under the latency model and advance the clock.

        Barrier semantics: the barrier waits its **full timeout whenever
        any expected copy is missing** — whether the copy is late under
        the latency model, dropped by the fault plan, or its sender has
        crashed; a receiver cannot tell those apart, so the wait is the
        same.  Only a round in which every copy arrives releases early,
        at the slowest on-time arrival.

        Late copies (and only those — deterministic withholding by a
        crashed or faulty sender is not transient) are then re-sent in up
        to ``retry_policy.max_retries`` grace sub-rounds; copies still
        missing afterwards are declared withheld.  Late messages are
        *transmitted* (they count toward the metrics, exactly like
        fault-plan drops) whether or not they eventually arrive.
        """
        delivered = 0
        flight = self.flight
        queued, self._outbox = self._outbox, []
        slowest_on_time = 0.0
        withheld_this_round = 0  # fault-plan drops + crashed-sender copies
        # Late copies eligible for retry, paired with the seq of their
        # original flight "send" event so retry events link back to it.
        pending: List[Tuple[Message, Optional[int]]] = []
        for message in queued:
            if self.fault_plan.sender_is_crashed(message.sender,
                                                 self.round_index):
                # The receivers still expected this round's copies: a
                # crashed sender holds the barrier to its full timeout.
                if message.is_broadcast:
                    withheld_this_round += len(
                        self._broadcast_recipients(message.sender))
                else:
                    withheld_this_round += 1
                continue
            stamped = message.with_round(self.round_index)
            if message.is_broadcast:
                self.bulletin_board.append(stamped)
                recipients = self._broadcast_recipients(message.sender)
                self.metrics.record(stamped, self.num_participants,
                                    copies=len(recipients))
            else:
                recipients = [message.recipient]
                self.metrics.record(stamped, self.num_participants)
            for recipient in recipients:
                unicast = Message(sender=stamped.sender, recipient=recipient,
                                  kind=stamped.kind, payload=stamped.payload,
                                  field_elements=stamped.field_elements,
                                  round_sent=self.round_index)
                sent_seq: Optional[int] = None
                if flight.enabled:
                    sent = flight.record(
                        EVENT_SEND, round_index=self.round_index,
                        kind=unicast.kind, sender=unicast.sender,
                        receiver=recipient,
                        field_elements=unicast.field_elements)
                    sent_seq = sent.seq if sent is not None else None
                final = self.fault_plan.transform(unicast, self.round_index)
                if final is None:
                    withheld_this_round += 1
                    if flight.enabled:
                        flight.record(EVENT_DROP,
                                      round_index=self.round_index,
                                      kind=unicast.kind,
                                      sender=unicast.sender,
                                      receiver=recipient,
                                      field_elements=unicast.field_elements,
                                      link=sent_seq, detail="fault_plan")
                    continue
                delay = self.latency_model.sample(stamped.sender, recipient)
                if delay > self.round_timeout:
                    pending.append((final, sent_seq))
                    if flight.enabled:
                        flight.record(EVENT_LATE,
                                      round_index=self.round_index,
                                      kind=final.kind, sender=final.sender,
                                      receiver=recipient,
                                      field_elements=final.field_elements,
                                      link=sent_seq, detail="missed_barrier")
                    continue
                slowest_on_time = max(slowest_on_time, delay)
                self._inboxes[recipient].append(final)
                if self.record_deliveries:
                    self.delivery_log.append(final)
                delivered += 1
                if flight.enabled:
                    flight.record(EVENT_DELIVER, round_index=self.round_index,
                                  kind=final.kind, sender=final.sender,
                                  receiver=recipient,
                                  field_elements=final.field_elements,
                                  link=sent_seq)
        # A barrier waits its full timeout whenever something is missing
        # (late, dropped, or from a crashed sender — all indistinguishable
        # to the receivers); otherwise it releases at the slowest on-time
        # arrival.
        missing = withheld_this_round + len(pending)
        duration = self.round_timeout if missing else slowest_on_time
        # Grace sub-rounds: bounded retransmission with backoff.
        retries_this_round = 0
        recovered_this_round = 0
        for attempt in range(1, self.retry_policy.max_attempts):
            if not pending:
                break
            window = self.retry_policy.grace_window(self.round_timeout,
                                                    attempt)
            still_pending: List[Tuple[Message, Optional[int]]] = []
            slowest_recovered = 0.0
            for copy, sent_seq in pending:
                self.metrics.record_retransmission(copy)
                retries_this_round += 1
                if flight.enabled:
                    flight.record(EVENT_RETRANSMIT,
                                  round_index=self.round_index,
                                  kind=copy.kind, sender=copy.sender,
                                  receiver=copy.recipient,
                                  field_elements=copy.field_elements,
                                  attempt=attempt, link=sent_seq)
                delay = self.latency_model.sample(copy.sender,
                                                  copy.recipient)
                if delay > window:
                    still_pending.append((copy, sent_seq))
                    continue
                slowest_recovered = max(slowest_recovered, delay)
                self._inboxes[copy.recipient].append(copy)
                if self.record_deliveries:
                    self.delivery_log.append(copy)
                self.metrics.record_recovery()
                recovered_this_round += 1
                delivered += 1
                if flight.enabled:
                    flight.record(EVENT_RECOVERY,
                                  round_index=self.round_index,
                                  kind=copy.kind, sender=copy.sender,
                                  receiver=copy.recipient,
                                  field_elements=copy.field_elements,
                                  attempt=attempt, link=sent_seq)
            # The grace barrier waits its full window while anything is
            # still missing; otherwise it releases at the last recovery.
            duration += window if still_pending else slowest_recovered
            pending = still_pending
        if flight.enabled:
            for copy, sent_seq in pending:
                flight.record(EVENT_DROP, round_index=self.round_index,
                              kind=copy.kind, sender=copy.sender,
                              receiver=copy.recipient,
                              field_elements=copy.field_elements,
                              link=sent_seq, detail="late")
        late_this_round = len(pending)
        self.late_messages += late_this_round
        self.retries += retries_this_round
        self.recovered += recovered_this_round
        self.round_durations.append(duration)
        self.clock += duration
        self.metrics.record_round()
        if self.observer.enabled:
            self.observer.event("network_round", round=self.round_index,
                                messages=len(queued), delivered=delivered,
                                late=late_this_round,
                                withheld=withheld_this_round,
                                retries=retries_this_round,
                                recovered=recovered_this_round,
                                barrier_duration=duration)
        self.round_index += 1
        return delivered
