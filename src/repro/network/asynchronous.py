"""Timeout semantics: running the synchronous protocol on slow links.

DMW is specified with implicit synchronization barriers; a deployment
realizes a barrier with a *timeout*: wait up to ``T`` for the round's
messages, treat anything later as withheld.  :class:`TimeoutNetwork`
extends the synchronous simulator with exactly that: every unicast's
arrival time is sampled from a :class:`~repro.network.latency.LatencyModel`,
messages arriving after the round timeout are dropped (and counted), and
a wall clock advances by the per-round barrier time.

This closes the loop on the paper's own future work ("implementing DMW
in a simulated distributed environment") at the fidelity the protocol's
synchronous structure admits: the interesting asynchrony — a slow agent
being indistinguishable from a withholding one — is captured, and the
safety dichotomy (correct outcome or abort, never a wrong outcome) can
be tested under it (``tests/test_asynchronous.py``).
"""

from __future__ import annotations

import random
from typing import List, Optional

from .faults import FaultPlan
from .latency import LatencyModel
from .message import Message
from .simulator import SynchronousNetwork


class TimeoutNetwork(SynchronousNetwork):
    """A synchronous network whose barriers are realized by timeouts.

    Parameters
    ----------
    num_agents, fault_plan, extra_participants:
        As for :class:`~repro.network.simulator.SynchronousNetwork`.
    latency_model:
        Per-message delay sampler.
    round_timeout:
        Barrier duration ``T``: messages with sampled delay above ``T``
        are dropped as late.
    """

    def __init__(self, num_agents: int, latency_model: LatencyModel,
                 round_timeout: float,
                 fault_plan: Optional[FaultPlan] = None,
                 extra_participants: int = 0) -> None:
        super().__init__(num_agents, fault_plan=fault_plan,
                         extra_participants=extra_participants)
        if round_timeout <= 0:
            raise ValueError("round timeout must be positive")
        self.latency_model = latency_model
        self.round_timeout = round_timeout
        #: Wall clock: sum of per-round barrier durations.
        self.clock = 0.0
        #: Unicast copies dropped for arriving after the timeout.
        self.late_messages = 0
        #: Per-round barrier durations (min(timeout, slowest on-time)).
        self.round_durations: List[float] = []

    def deliver(self) -> int:
        """Deliver the round under the latency model and advance the clock.

        Late messages are *transmitted* (they count toward the metrics,
        exactly like fault-plan drops) but never arrive; the receiving
        code observes them as withheld.
        """
        delivered = 0
        queued, self._outbox = self._outbox, []
        slowest_on_time = 0.0
        late_this_round = 0
        for message in queued:
            if self.fault_plan.sender_is_crashed(message.sender,
                                                 self.round_index):
                continue
            stamped = message.with_round(self.round_index)
            self.metrics.record(stamped, self.num_participants)
            if message.is_broadcast:
                self.bulletin_board.append(stamped)
                recipients = [a for a in range(self.num_participants)
                              if a != message.sender]
            else:
                recipients = [message.recipient]
            for recipient in recipients:
                unicast = Message(sender=stamped.sender, recipient=recipient,
                                  kind=stamped.kind, payload=stamped.payload,
                                  field_elements=stamped.field_elements,
                                  round_sent=self.round_index)
                final = self.fault_plan.transform(unicast, self.round_index)
                if final is None:
                    continue
                delay = self.latency_model.sample(stamped.sender, recipient)
                if delay > self.round_timeout:
                    late_this_round += 1
                    continue
                slowest_on_time = max(slowest_on_time, delay)
                self._inboxes[recipient].append(final)
                if self.record_deliveries:
                    self.delivery_log.append(final)
                delivered += 1
        # A barrier waits its full timeout whenever something is missing;
        # otherwise it releases at the slowest on-time arrival.
        duration = self.round_timeout if late_this_round else slowest_on_time
        self.late_messages += late_this_round
        self.round_durations.append(duration)
        self.clock += duration
        self.metrics.record_round()
        if self.observer.enabled:
            self.observer.event("network_round", round=self.round_index,
                                messages=len(queued), delivered=delivered,
                                late=late_this_round,
                                barrier_duration=duration)
        self.round_index += 1
        return delivered
