"""Typed messages for the simulated network.

Every protocol transmission — a private share, a published commitment
vector, a payment claim — is a :class:`Message`.  Messages carry an
accounting weight in *field elements* (integers mod ``p`` or mod ``q``), so
communication cost can be reported both in message counts (the unit of
Theorem 11) and in field-element volume (a proxy for bytes: multiply by
``ceil(log2 p / 8)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Sentinel recipient meaning "published to every participant".
BROADCAST = None


@dataclass(frozen=True)
class Message:
    """One transmission on the simulated network.

    Attributes
    ----------
    sender:
        Sending agent id.
    recipient:
        Receiving agent id, or :data:`BROADCAST` for a published message.
    kind:
        Message type tag, e.g. ``"share"``, ``"commitment"``, ``"lambda_psi"``.
    payload:
        Arbitrary content; the simulator never inspects it.
    field_elements:
        Number of field elements the payload encodes (accounting weight).
    round_sent:
        Filled in by the simulator at delivery time.
    """

    sender: int
    recipient: Optional[int]
    kind: str
    payload: Any
    field_elements: int = 1
    round_sent: int = -1

    @property
    def is_broadcast(self) -> bool:
        return self.recipient is BROADCAST

    def with_round(self, round_index: int) -> "Message":
        """Return a copy stamped with the delivery round."""
        return Message(sender=self.sender, recipient=self.recipient,
                       kind=self.kind, payload=self.payload,
                       field_elements=self.field_elements,
                       round_sent=round_index)


def estimate_bytes(field_elements: int, p_bits: int) -> int:
    """Convert a field-element count to bytes for a given field size."""
    return field_elements * ((p_bits + 7) // 8)
