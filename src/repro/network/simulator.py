"""Synchronous round-based message-passing simulator.

DMW's phases are implicitly synchronized (paper step II.4: "agents cannot
continue until all shares are transmitted and commitments published"), so a
synchronous model is faithful: within a round every agent deposits outgoing
messages, then :meth:`SynchronousNetwork.deliver` moves them to the
recipients' inboxes atomically.

Two transmission primitives exist, mirroring Fig. 2:

* :meth:`send` — a private point-to-point message (solid arrows);
* :meth:`publish` — a published message (dashed arrows), delivered to every
  other agent and retained on a bulletin board; accounted as ``n - 1``
  unicasts per the proof of Theorem 11.

The simulator is deliberately *dumb*: it moves and counts messages and
applies the :class:`~repro.network.faults.FaultPlan`; all protocol logic
lives in the agents.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from ..obs.flight import (EVENT_DELIVER, EVENT_DROP, EVENT_SEND, NULL_FLIGHT,
                          FlightRecorder)
from ..obs.spans import NULL_RECORDER
from .faults import FaultPlan, obedient_plan
from .message import BROADCAST, Message
from .metrics import NetworkMetrics


class SynchronousNetwork:
    """A synchronous network connecting ``num_agents`` participants.

    Agent ids are ``0 .. num_agents - 1``.  An optional extra participant
    (e.g. the trusted center of centralized MinWork, or DMW's payment
    infrastructure endpoint) can be registered via ``extra_participants``;
    it gets an id at the top of the range and full send/receive rights,
    but does not change the broadcast fan-out used for agent-to-agent
    publishing unless included explicitly: with the default
    ``broadcast_to_extras=False`` a published message reaches the other
    *agents* only (``n - 1`` unicasts, the Theorem 11 accounting unit);
    setting ``broadcast_to_extras=True`` opts the extra participants into
    every broadcast, and the metrics charge the actual recipient count.
    """

    def __init__(self, num_agents: int,
                 fault_plan: Optional[FaultPlan] = None,
                 extra_participants: int = 0,
                 record_deliveries: bool = False,
                 broadcast_to_extras: bool = False) -> None:
        if num_agents < 1:
            raise ValueError("need at least one agent")
        if extra_participants < 0:
            raise ValueError("extra_participants must be non-negative")
        self.num_agents = num_agents
        self.num_participants = num_agents + extra_participants
        #: Whether published messages also reach the extra participants.
        self.broadcast_to_extras = broadcast_to_extras
        self.fault_plan = fault_plan or obedient_plan()
        self.metrics = NetworkMetrics()
        self._outbox: List[Message] = []
        self._inboxes: Dict[int, List[Message]] = defaultdict(list)
        #: Published history: list of delivered broadcast messages, in order.
        self.bulletin_board: List[Message] = []
        #: Every delivered unicast copy, when ``record_deliveries`` is on
        #: (used by the latency model to reconstruct a timeline).
        self.record_deliveries = record_deliveries
        self.delivery_log: List[Message] = []
        self.round_index = 0
        #: Observability hook: a :class:`~repro.obs.spans.SpanRecorder`
        #: that receives one ``network_round`` event per delivery barrier.
        #: The default null recorder keeps the hot path allocation-free
        #: (every emission is guarded by ``observer.enabled``).
        self.observer = NULL_RECORDER
        #: Flight recorder: one :class:`~repro.obs.flight.FlightEvent` per
        #: unicast copy at each lifecycle step (send/deliver/drop).  The
        #: default null recorder keeps the hot path allocation-free
        #: (every emission is guarded by ``flight.enabled``).
        self.flight: FlightRecorder = NULL_FLIGHT

    # -- validation -----------------------------------------------------------
    def _check_participant(self, participant: int, role: str) -> None:
        if not 0 <= participant < self.num_participants:
            raise ValueError("invalid %s id %d" % (role, participant))

    def _broadcast_recipients(self, sender: int) -> List[int]:
        """Recipients of one published message (the fan-out contract).

        Every agent other than the sender, plus — only when
        ``broadcast_to_extras`` is set — the extra participants.
        """
        limit = (self.num_participants if self.broadcast_to_extras
                 else self.num_agents)
        return [a for a in range(limit) if a != sender]

    # -- transmission primitives ------------------------------------------------
    def send(self, sender: int, recipient: int, kind: str, payload: Any,
             field_elements: int = 1) -> None:
        """Queue a private point-to-point message for the next delivery."""
        self._check_participant(sender, "sender")
        self._check_participant(recipient, "recipient")
        if sender == recipient:
            raise ValueError("agents do not message themselves")
        self._outbox.append(Message(sender=sender, recipient=recipient,
                                    kind=kind, payload=payload,
                                    field_elements=field_elements))

    def publish(self, sender: int, kind: str, payload: Any,
                field_elements: int = 1) -> None:
        """Queue a published message (broadcast) for the next delivery."""
        self._check_participant(sender, "sender")
        self._outbox.append(Message(sender=sender, recipient=BROADCAST,
                                    kind=kind, payload=payload,
                                    field_elements=field_elements))

    # -- round execution -----------------------------------------------------
    def deliver(self) -> int:
        """Deliver all queued messages; returns the number delivered.

        Faults are applied per expanded unicast copy, so a broadcast from a
        crashed sender reaches nobody while a broadcast over one dropped
        link still reaches the other recipients.  Metrics count messages
        actually *sent* by live senders (a dropped message was transmitted;
        it just did not arrive).
        """
        delivered = 0
        flight = self.flight
        queued, self._outbox = self._outbox, []
        for message in queued:
            if self.fault_plan.sender_is_crashed(message.sender,
                                                 self.round_index):
                continue
            stamped = message.with_round(self.round_index)
            if message.is_broadcast:
                self.bulletin_board.append(stamped)
                recipients = self._broadcast_recipients(message.sender)
                self.metrics.record(stamped, self.num_participants,
                                    copies=len(recipients))
            else:
                recipients = [message.recipient]
                self.metrics.record(stamped, self.num_participants)
            for recipient in recipients:
                unicast = Message(sender=stamped.sender, recipient=recipient,
                                  kind=stamped.kind, payload=stamped.payload,
                                  field_elements=stamped.field_elements,
                                  round_sent=self.round_index)
                sent_seq: Optional[int] = None
                if flight.enabled:
                    # One send event per expanded unicast copy — the unit
                    # NetworkMetrics charges (Theorem 11), dropped or not.
                    sent = flight.record(
                        EVENT_SEND, round_index=self.round_index,
                        kind=unicast.kind, sender=unicast.sender,
                        receiver=recipient,
                        field_elements=unicast.field_elements)
                    sent_seq = sent.seq if sent is not None else None
                final = self.fault_plan.transform(unicast, self.round_index)
                if final is not None:
                    self._inboxes[recipient].append(final)
                    if self.record_deliveries:
                        self.delivery_log.append(final)
                    delivered += 1
                    if flight.enabled:
                        flight.record(EVENT_DELIVER,
                                      round_index=self.round_index,
                                      kind=final.kind, sender=final.sender,
                                      receiver=recipient,
                                      field_elements=final.field_elements,
                                      link=sent_seq)
                elif flight.enabled:
                    flight.record(EVENT_DROP, round_index=self.round_index,
                                  kind=unicast.kind, sender=unicast.sender,
                                  receiver=recipient,
                                  field_elements=unicast.field_elements,
                                  link=sent_seq, detail="fault_plan")
        self.metrics.record_round()
        if self.observer.enabled:
            self.observer.event("network_round", round=self.round_index,
                                messages=len(queued), delivered=delivered)
        self.round_index += 1
        return delivered

    # -- reception -------------------------------------------------------------
    def receive(self, agent: int, kind: Optional[str] = None) -> List[Message]:
        """Drain (and return) an agent's inbox, optionally filtered by kind.

        Filtered receives leave other kinds queued.
        """
        self._check_participant(agent, "agent")
        inbox = self._inboxes[agent]
        if kind is None:
            self._inboxes[agent] = []
            return inbox
        matched = [m for m in inbox if m.kind == kind]
        self._inboxes[agent] = [m for m in inbox if m.kind != kind]
        return matched

    def peek(self, agent: int) -> Tuple[Message, ...]:
        """Return an agent's queued messages without consuming them."""
        self._check_participant(agent, "agent")
        return tuple(self._inboxes[agent])

    def published(self, kind: Optional[str] = None) -> List[Message]:
        """Return the bulletin-board history, optionally filtered by kind."""
        if kind is None:
            return list(self.bulletin_board)
        return [m for m in self.bulletin_board if m.kind == kind]
