"""Communication accounting (the measurement side of Theorem 11).

The paper counts a "published" message as ``n - 1`` point-to-point
transmissions (proof of Theorem 11 assumes no broadcast facility), so the
headline figure is :attr:`NetworkMetrics.point_to_point_messages` with that
expansion applied.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from .message import Message


@dataclass
class NetworkMetrics:
    """Running totals of network activity.

    Attributes
    ----------
    point_to_point_messages:
        Unicast transmissions, with each broadcast expanded to ``n - 1``.
    broadcast_events:
        Number of publish operations (before expansion).
    field_elements:
        Total field elements transmitted (same expansion rule).
    rounds:
        Synchronous rounds executed.
    retransmissions:
        Unicast copies re-sent during grace sub-rounds (each one is
        *also* counted in :attr:`point_to_point_messages` — a retry is
        real traffic, so the Theorem 11 totals include it).
    recovered_messages:
        Retransmitted copies that arrived inside a grace window instead
        of being declared withheld.
    by_kind:
        Point-to-point message counts per message kind.
    """

    point_to_point_messages: int = 0
    broadcast_events: int = 0
    field_elements: int = 0
    rounds: int = 0
    retransmissions: int = 0
    recovered_messages: int = 0
    by_kind: Counter = field(default_factory=Counter)

    def record(self, message: Message, num_agents: int,
               copies: Optional[int] = None) -> None:
        """Account for one logical message.

        ``copies`` overrides the default ``num_agents - 1`` broadcast
        expansion: networks that exclude extra participants from the
        fan-out (or include them explicitly) charge the number of
        unicasts actually transmitted.  Ignored for unicasts, which are
        always one copy.
        """
        if message.is_broadcast:
            if copies is None:
                copies = max(num_agents - 1, 0)
            self.broadcast_events += 1
        else:
            copies = 1
        self.point_to_point_messages += copies
        self.field_elements += copies * message.field_elements
        self.by_kind[message.kind] += copies

    def record_round(self) -> None:
        self.rounds += 1

    def record_retransmission(self, message: Message) -> None:
        """Account for one re-sent unicast copy (grace sub-round traffic).

        The copy is charged at full price — one point-to-point message,
        its field elements, its kind — plus the :attr:`retransmissions`
        tally, so retries are accounted exactly, never hidden.
        """
        self.retransmissions += 1
        self.point_to_point_messages += 1
        self.field_elements += message.field_elements
        self.by_kind[message.kind] += 1

    def record_recovery(self) -> None:
        """Account for one late message saved by a retransmission."""
        self.recovered_messages += 1

    def merge(self, other: "NetworkMetrics") -> None:
        """Fold another metrics object into this one."""
        self.point_to_point_messages += other.point_to_point_messages
        self.broadcast_events += other.broadcast_events
        self.field_elements += other.field_elements
        self.rounds += other.rounds
        self.retransmissions += other.retransmissions
        self.recovered_messages += other.recovered_messages
        self.by_kind.update(other.by_kind)

    def as_dict(self) -> Dict[str, int]:
        """Return a plain-dict summary (stable keys for table rendering).

        The retry tallies appear only when non-zero so fault-free runs
        keep the exact historical key set (and the regression gate's
        "no accounting drift" baseline stays byte-stable).
        """
        summary = {
            "point_to_point_messages": self.point_to_point_messages,
            "broadcast_events": self.broadcast_events,
            "field_elements": self.field_elements,
            "rounds": self.rounds,
        }
        if self.retransmissions:
            summary["retransmissions"] = self.retransmissions
        if self.recovered_messages:
            summary["recovered_messages"] = self.recovered_messages
        for kind in sorted(self.by_kind):
            summary["messages[%s]" % kind] = self.by_kind[kind]
        return summary
